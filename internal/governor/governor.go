// Package governor adds the runtime piece the paper's methodology stops
// short of: a controller that applies a model-selected frequency to a
// device and keeps watching telemetry for workload drift.
//
// The paper's online phase is one-shot — profile once at the maximum
// clock, pick a frequency, done. That is sound while the workload keeps
// the same computational character: the selected features (fp_active,
// dram_active) are input-size- and DVFS-invariant, so neither a bigger
// problem size nor the applied clock invalidates the choice. What does
// invalidate it is a change of character — a simulation entering a
// different phase, a training job switching models. The governor detects
// that as feature drift against the profiling baseline and re-runs the
// online phase.
package governor

import (
	"errors"
	"fmt"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/trace"
)

// Config controls governing behaviour. The zero value is not usable; use
// DefaultConfig or fill Objective.
type Config struct {
	// Objective ranks candidate frequencies (required).
	Objective objective.Objective
	// Threshold is the performance-degradation bound for Algorithm 1; a
	// negative value selects the unconstrained optimum.
	Threshold float64
	// DriftTolerance is the relative feature change versus the profiling
	// baseline that counts as drift. Default 0.25: well above the
	// features' natural DVFS/input-size wobble (§4.2), well below a
	// change of computational character.
	DriftTolerance float64
	// ReprofileAfter is how many consecutive drifted observations trigger
	// re-tuning (hysteresis against transients). Default 3.
	ReprofileAfter int
	// ProfileSeed seeds the profiling runs' telemetry noise.
	ProfileSeed int64
	// MemFreqs extends the governed design space to the (core × memory)
	// grid: each tune sweeps every (core, mem) pair and pins both clocks.
	// Every entry must be a memory P-state the device supports. Nil governs
	// the core axis only — bit-identical to the historical behaviour.
	MemFreqs []float64

	// PhaseWindow is the half-window of the streaming change-point detector
	// (trace.OnlineOptions.Window) the Run loop rides on every telemetry
	// sample. Default 8 (minimum 2).
	PhaseWindow int
	// RetuneCooldown is the minimum number of governed runs between tunes in
	// the Run loop: drift and phase-shift evidence accumulates but cannot
	// trigger a re-profile until the cooldown has passed. Default 1 (re-tune
	// as soon as evidence demands). A cooldown longer than the stream turns
	// the loop into the paper's one-shot governor.
	RetuneCooldown int
	// FuseStatic blends statically derived workload traits into the
	// prediction features when the workload implements
	// backend.StaticProfiler: feature = (1-w)·dynamic + w·static. 0 (the
	// default) disables fusion and keeps every tune bit-identical to the
	// telemetry-only formulation. Must be in [0, 1).
	FuseStatic float64
	// FuseAdaptive derives the fusion blend weight from observed telemetry
	// noise instead of applying FuseStatic as a fixed weight: FuseStatic
	// becomes the weight's ceiling, approached as per-sample feature
	// variance grows past the natural noise floor (noisy telemetry → lean
	// on static traits) and released as the signal cleans up. Each tune
	// derives its weight from its own profiling run's sample variance.
	// With FuseStatic 0 the weight is identically 0, bit-identical to the
	// fusion-free governor.
	FuseAdaptive bool
	// PhasedTuning makes every tune in the Run loop predict from the
	// dominant phase of the profiling telemetry (the TunePhased strategy)
	// instead of the whole-stream mean. One-shot Tune is unaffected.
	PhasedTuning bool

	// PhaseCacheSize bounds the governor's phase-memoization cache: the
	// number of tuned phases whose selections are retained for
	// zero-reprofile re-pins when the stream revisits them. 0 (the
	// default) disables memoization — every retune re-profiles, exactly
	// the pre-cache behaviour.
	PhaseCacheSize int
	// PhaseQuantum is the feature quantization step of the phase
	// fingerprint: phases whose mean (fp_active, dram_active) fall in the
	// same quantum alias to one cache entry, phases further apart than a
	// quantum in either feature provably never do. Default 0.1 — wide
	// enough to absorb the features' natural DVFS/input-size wobble
	// (§4.2), narrow enough to separate changes of computational
	// character.
	PhaseQuantum float64
	// PhaseStaleAfter bounds a memoized phase's confidence in governed
	// runs: an entry last pinned more than this many runs ago is treated
	// as stale and re-profiled instead of re-pinned (the fresh tune
	// refreshes the entry). 0 (the default) means entries never decay.
	PhaseStaleAfter int
	// Metrics, when non-nil, receives the governor's observability counters
	// and latency histograms. Nil disables instrumentation at zero cost.
	Metrics *Metrics
}

// DefaultConfig returns a governor configuration with the paper's ED²P
// objective, unconstrained selection, and default drift hysteresis.
func DefaultConfig() Config {
	return Config{Objective: objective.ED2P{}, Threshold: -1}
}

func (c Config) withDefaults() (Config, error) {
	if c.Objective == nil {
		return c, errors.New("governor: Config.Objective is required")
	}
	if c.DriftTolerance == 0 {
		c.DriftTolerance = 0.25
	}
	if c.DriftTolerance < 0 || c.DriftTolerance >= 1 {
		return c, fmt.Errorf("governor: drift tolerance %v out of (0,1)", c.DriftTolerance)
	}
	if c.ReprofileAfter == 0 {
		c.ReprofileAfter = 3
	}
	if c.ReprofileAfter < 0 {
		return c, fmt.Errorf("governor: negative reprofile hysteresis %d", c.ReprofileAfter)
	}
	if c.PhaseWindow == 0 {
		c.PhaseWindow = 8
	}
	if c.PhaseWindow < 2 {
		return c, fmt.Errorf("governor: phase window %d < 2", c.PhaseWindow)
	}
	if c.RetuneCooldown == 0 {
		c.RetuneCooldown = 1
	}
	if c.RetuneCooldown < 0 {
		return c, fmt.Errorf("governor: negative retune cooldown %d", c.RetuneCooldown)
	}
	if c.FuseStatic < 0 || c.FuseStatic >= 1 {
		return c, fmt.Errorf("governor: static fusion weight %v out of [0,1)", c.FuseStatic)
	}
	if c.PhaseCacheSize < 0 {
		return c, fmt.Errorf("governor: negative phase cache size %d", c.PhaseCacheSize)
	}
	if c.PhaseQuantum == 0 {
		c.PhaseQuantum = 0.1
	}
	if c.PhaseQuantum < 0 {
		return c, fmt.Errorf("governor: negative phase quantum %v", c.PhaseQuantum)
	}
	if c.PhaseStaleAfter < 0 {
		return c, fmt.Errorf("governor: negative phase staleness bound %d", c.PhaseStaleAfter)
	}
	return c, nil
}

// Stats counts governor activity.
type Stats struct {
	Tunes       int // online phases run (initial + re-tunes)
	Runs        int // workload executions observed
	DriftedRuns int // observations flagged as drifted
	Retunes     int // re-tunes triggered by drift (re-profiles and re-pins)
	RePins      int // retunes satisfied from the phase cache, no re-profile
	// DriftRetunes / ShiftRetunes attribute retunes to their trigger
	// sources, counted independently: a retune demanded by both drift
	// hysteresis and a detector shift in the same step increments both, so
	// each counter matches its detector's ground truth.
	DriftRetunes int
	ShiftRetunes int
	PhaseShifts  int // intra-run phase shifts flagged by the streaming detector
	Clamped      int // predictions floored to the safety bounds across all tunes
	// ClampedCore / ClampedMem split Clamped by design-space axis: core
	// counts clamps at the default memory P-state (all of Clamped for a
	// core-only governor), mem counts clamps at off-default memory clocks.
	ClampedCore  int
	ClampedMem   int
	EnergyJoules float64
	TimeSeconds  float64
	// ProfileEnergyJoules / ProfileTimeSeconds account the profiling runs
	// themselves (executed at the maximum clock), separately from the
	// governed executions above — the overhead side of the re-tune ledger.
	ProfileEnergyJoules float64
	ProfileTimeSeconds  float64
}

// Governor applies model-selected frequencies and re-tunes on drift.
type Governor struct {
	dev    backend.Device
	models *core.Models
	cfg    Config

	// sw and profBuf are the serving-path state: the design-space sweeper
	// is built once per governor and every (re-)tune predicts into the same
	// buffer, so a long-lived governor allocates nothing per re-tune.
	sw      *core.Sweeper
	profBuf []objective.Profile

	// fused is the single-sample scratch run the fusion path predicts from;
	// keeping it on the governor makes fused re-tunes allocation-free too.
	fused [1]dcgm.Sample

	tuned     bool
	selection core.Selection
	baseline  dcgm.Sample // mean profiling sample that justified selection
	drifted   int
	stats     Stats

	// Streaming state for the Run loop, built lazily on first use: a
	// persistent telemetry stream (one sampler, never re-created per run)
	// and the online change-point detector riding its samples.
	strm      *dcgm.Stream
	det       *trace.Online
	onSample  func(backend.Sample)
	runShifts int     // shifts flagged during the current governed run
	obsSumFP  float64 // per-run telemetry accumulators for drift checks
	obsSumDR  float64
	obsSqFP   float64 // sums of squares — per-run feature variance for
	obsSqDR   float64 // adaptive fusion and phase noise estimates
	obsCount  int
	sinceTune int  // governed runs since the last tune (cooldown clock)
	retune    bool // evidence demands a re-profile before the next run

	// Phase-memoization state: the bounded cache of tuned phases, plus the
	// pending phase identity stashed by a cache miss so the tune that
	// follows memoizes under the fingerprint observed at trigger time.
	phases      *phaseCache
	pendingKey  string
	pendingHash uint64
	pendingFP   float64
	pendingDR   float64
	havePending bool
	// pendingDrift / pendingShift record which sources demanded the
	// pending retune, so the tune (or re-pin) that consumes it can credit
	// every source independently.
	pendingDrift bool
	pendingShift bool
}

// New returns a governor over dev using the given trained models.
func New(dev backend.Device, models *core.Models, cfg Config) (*Governor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if dev == nil || models == nil {
		return nil, errors.New("governor: device and models are required")
	}
	g := &Governor{dev: dev, models: models, cfg: cfg}
	if cfg.PhaseCacheSize > 0 {
		g.phases = newPhaseCache(cfg.PhaseCacheSize, cfg.PhaseQuantum, cfg.PhaseStaleAfter)
	}
	return g, nil
}

// Selection returns the currently applied selection; valid after Tune.
func (g *Governor) Selection() core.Selection { return g.selection }

// Stats returns a snapshot of the governor's counters.
func (g *Governor) Stats() Stats { return g.stats }

// sweeper lazily resolves the design-space sweeper and the governor-owned
// profile buffer the tune paths predict into. It goes through the models'
// memoized SweeperFor, so every governor (and the serving layer) over the
// same models and target shares one workspace-pooled sweeper — the profile
// buffer stays per-governor.
func (g *Governor) sweeper() (*core.Sweeper, error) {
	if g.sw == nil {
		sw, err := g.models.GridSweeperFor(g.dev.Arch(), g.dev.Arch().DesignClocks(), g.cfg.MemFreqs)
		if err != nil {
			return nil, err
		}
		g.sw = sw
		g.profBuf = make([]objective.Profile, sw.GridSize())
	}
	return g.sw, nil
}

// applyClamps folds one sweep's clamp counts into the governor's counters.
func (g *Governor) applyClamps(c core.Clamps) {
	g.stats.Clamped += c.Total()
	g.stats.ClampedCore += c.Core
	g.stats.ClampedMem += c.Mem
}

// pin applies a selection to the device: the core clock always, the memory
// clock only when the selection carries one (2-D governors; a core-only
// governor never touches the memory P-state).
func (g *Governor) pin(sel core.Selection) error {
	if err := g.dev.SetClock(sel.FreqMHz); err != nil {
		return err
	}
	if sel.MemFreqMHz != 0 {
		if err := g.dev.SetMemClock(sel.MemFreqMHz); err != nil {
			return err
		}
	}
	return nil
}

// profileAtMax runs one profiling run at the maximum clock with the same
// seed schedule every tune path uses.
func (g *Governor) profileAtMax(app backend.Workload) (dcgm.Run, error) {
	coll := dcgm.NewCollector(g.dev, dcgm.Config{Seed: g.cfg.ProfileSeed + int64(g.stats.Tunes)})
	run, err := coll.ProfileAtMax(app)
	if err != nil {
		return dcgm.Run{}, fmt.Errorf("governor: profiling %s: %w", app.WorkloadName(), err)
	}
	g.stats.ProfileEnergyJoules += run.EnergyJoules
	g.stats.ProfileTimeSeconds += run.ExecTimeSec
	g.cfg.Metrics.tuned(run.ExecTimeSec)
	return run, nil
}

// Tune runs the paper's online phase for app (one profiling run at the
// maximum clock), selects the optimal frequency under the configured
// objective, and pins the device clock to it. Predictions go through the
// governor's reused sweeper and buffer; the selection is bit-identical to
// the allocating core.OnlinePredict + SelectFrequency formulation.
func (g *Governor) Tune(app backend.Workload) (core.Selection, error) {
	if _, err := g.sweeper(); err != nil {
		return core.Selection{}, err
	}
	run, err := g.profileAtMax(app)
	if err != nil {
		return core.Selection{}, err
	}
	return g.tuneFrom(app, run)
}

// tuneFrom completes a tune from an already-collected profiling run:
// predict across the design space, select under the objective, pin the
// device, and reset the drift state. With static fusion configured and a
// workload that exposes static traits, the prediction features are the
// fused blend; the drift baseline stays the raw dynamic mean, since drift
// is judged against observed telemetry. With FuseStatic 0 the prediction
// input is the run itself, bit-identical to the historical Tune.
func (g *Governor) tuneFrom(app backend.Workload, run dcgm.Run) (core.Selection, error) {
	sw, err := g.sweeper()
	if err != nil {
		return core.Selection{}, err
	}
	mean := run.MeanSample()
	predict := run
	if w := g.fuseWeight(run); w > 0 {
		if sp, ok := app.(backend.StaticProfiler); ok {
			if tr := sp.Static(); !tr.IsZero() {
				g.fused[0] = FuseSample(mean, tr, w)
				predict.Samples = g.fused[:]
			}
		}
	}
	clamped, err := sw.PredictProfileInto(g.profBuf, predict)
	if err != nil {
		return core.Selection{}, fmt.Errorf("governor: predicting %s: %w", app.WorkloadName(), err)
	}
	g.applyClamps(clamped)
	sel, err := core.SelectFrequency(g.profBuf, g.cfg.Objective, g.cfg.Threshold)
	if err != nil {
		return core.Selection{}, err
	}
	if err := g.pin(sel); err != nil {
		return core.Selection{}, err
	}
	g.selection = sel
	g.baseline = mean
	g.tuned = true
	g.drifted = 0
	g.stats.Tunes++
	return sel, nil
}

// Drifted reports whether sample s departs from the profiling baseline by
// more than the configured tolerance in fp_active or dram_active — the
// two features whose invariance justifies keeping the current frequency.
func (g *Governor) Drifted(s dcgm.Sample) bool {
	return g.driftedFeatures(s.FPActive(), s.DRAMActive)
}

// driftedFeatures is Drifted on the bare feature pair — what the streaming
// loop feeds from its per-run telemetry accumulators without materializing
// a sample.
func (g *Governor) driftedFeatures(fp, dram float64) bool {
	return relDiff(fp, g.baseline.FPActive()) > g.cfg.DriftTolerance ||
		relDiff(dram, g.baseline.DRAMActive) > g.cfg.DriftTolerance
}

// noteDrift feeds one run's drift verdict into the hysteresis counter and
// reports whether drift has now persisted for ReprofileAfter consecutive
// runs — the point where the governor must re-run the online phase.
func (g *Governor) noteDrift(drifted bool) bool {
	if drifted {
		g.drifted++
		g.stats.DriftedRuns++
	} else {
		g.drifted = 0
	}
	return g.drifted >= g.cfg.ReprofileAfter
}

func relDiff(a, b float64) float64 {
	// Below this level activities are compared on an absolute scale: a
	// 0.06→0.09 move is normal clock-induced wobble for a near-idle pipe
	// (§4.2's invariance is absolute for small activities), not a change
	// of workload character.
	const eps = 0.15
	d := a - b
	if d < 0 {
		d = -d
	}
	den := b
	if den < eps {
		den = eps
	}
	return d / den
}

// RunOutcome is one governed execution of the application.
type RunOutcome struct {
	FreqMHz      float64
	TimeSec      float64
	EnergyJoules float64
	Drifted      bool
	Retuned      bool
}

// ProcessRun executes app once at the governed clock, observes its
// telemetry for drift, and re-tunes (re-profiles and re-selects) when
// drift has persisted for ReprofileAfter consecutive runs. The app passed
// here may differ from the one last tuned for — that is exactly the
// situation the governor exists to notice.
func (g *Governor) ProcessRun(app backend.Workload) (RunOutcome, error) {
	if !g.tuned {
		if _, err := g.Tune(app); err != nil {
			return RunOutcome{}, err
		}
	}
	coll := dcgm.NewCollector(g.dev, dcgm.Config{
		Freqs: []float64{g.selection.FreqMHz},
		Runs:  1,
		Seed:  g.cfg.ProfileSeed + 1000 + int64(g.stats.Runs),
	})
	runs, err := coll.CollectWorkload(app)
	if err != nil {
		return RunOutcome{}, err
	}
	// CollectWorkload restores the default core clock (it never touches the
	// memory P-state with no MemFreqs configured); re-pin the governed pair.
	if err := g.pin(g.selection); err != nil {
		return RunOutcome{}, err
	}
	run := runs[0]
	out := RunOutcome{
		FreqMHz:      run.FreqMHz,
		TimeSec:      run.ExecTimeSec,
		EnergyJoules: run.EnergyJoules,
	}
	g.stats.Runs++
	g.stats.EnergyJoules += run.EnergyJoules
	g.stats.TimeSeconds += run.ExecTimeSec

	out.Drifted = g.Drifted(run.MeanSample())
	if g.noteDrift(out.Drifted) {
		if _, err := g.Tune(app); err != nil {
			return RunOutcome{}, err
		}
		out.Retuned = true
		g.stats.Retunes++
	}
	return out, nil
}
