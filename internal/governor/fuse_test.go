package governor

import (
	"context"
	"math"
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/workloads"
)

func close64(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestFuseSample(t *testing.T) {
	dyn := dcgm.Sample{
		FP64Active: 0.6, FP32Active: 0.2,
		DRAMActive: 0.4, SMOccupancy: 0.5,
		PowerUsage: 200, SMAppClockMHz: 1410,
	}
	tr := backend.StaticTraits{FPActive: 1.0, DRAMActive: 0.2, Occupancy: 0.7}

	f := FuseSample(dyn, tr, 0.5)
	// fp_active: 0.5·0.8 + 0.5·1.0 = 0.9, split 3:1 like the dynamic pipes.
	if !close64(f.FPActive(), 0.9) || !close64(f.FP64Active, 0.675) || !close64(f.FP32Active, 0.225) {
		t.Fatalf("fused FP: %+v", f)
	}
	if !close64(f.DRAMActive, 0.3) || !close64(f.SMOccupancy, 0.6) {
		t.Fatalf("fused DRAM/occupancy: %+v", f)
	}
	// Non-feature telemetry passes through untouched.
	if f.PowerUsage != dyn.PowerUsage || f.SMAppClockMHz != dyn.SMAppClockMHz {
		t.Fatalf("fusion touched non-feature fields: %+v", f)
	}

	// Zero dynamic FP activity: nothing to apportion by, FP32 carries it.
	idle := dcgm.Sample{DRAMActive: 0.4}
	fi := FuseSample(idle, tr, 0.5)
	if !close64(fi.FP32Active, 0.5) || fi.FP64Active != 0 {
		t.Fatalf("zero-FP fusion: %+v", fi)
	}

	// Traits without an occupancy estimate leave the dynamic one alone.
	noOcc := FuseSample(dyn, backend.StaticTraits{FPActive: 0.9, DRAMActive: 0.3}, 0.5)
	if noOcc.SMOccupancy != dyn.SMOccupancy {
		t.Fatalf("occupancy blended from a zero trait: %+v", noOcc)
	}
}

// TestGovernorFusedTune runs a fused governor end to end: the workload's
// static traits move the feature point, the tune must still land on a
// supported clock, and disabling fusion (weight 0) reproduces the plain
// Tune exactly — the bit-identity guarantee of the default.
func TestGovernorFusedTune(t *testing.T) {
	m := quickModels(t)

	plain, err := New(sim.New(sim.GA100(), 18), m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Tune(workloads.LAMMPS())
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.FuseStatic = 0.4
	dev := sim.New(sim.GA100(), 18)
	fused, err := New(dev, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := fused.Tune(workloads.LAMMPS())
	if err != nil {
		t.Fatal(err)
	}
	if !sim.GA100().IsSupported(sel.FreqMHz) || dev.Clock() != sel.FreqMHz {
		t.Fatalf("fused tune left device at %v for selection %+v", dev.Clock(), sel)
	}

	zero, err := New(sim.New(sim.GA100(), 18), m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	again, err := zero.Tune(workloads.LAMMPS())
	if err != nil {
		t.Fatal(err)
	}
	if again != want {
		t.Fatalf("weight-0 tune diverged: %+v vs %+v", again, want)
	}
}

// TestGovernorFusedRun drives the streaming loop with fusion enabled over
// a shifting stream — the issue's combined scenario.
func TestGovernorFusedRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FuseStatic = 0.3
	g, err := New(sim.New(sim.GA100(), 19), quickModels(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), workloads.PhaseShifting(4, 12))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 12 || rep.Retunes < 1 {
		t.Fatalf("fused loop: %+v", rep)
	}
}

// TestAdaptiveFuseWeight pins the confidence curve: zero at either a zero
// ceiling or a clean signal, half the ceiling exactly at the natural
// noise floor, monotone in the variance, and never reaching the ceiling.
func TestAdaptiveFuseWeight(t *testing.T) {
	if w := AdaptiveFuseWeight(0, 1.0); w != 0 {
		t.Fatalf("zero ceiling yielded %v", w)
	}
	if w := AdaptiveFuseWeight(0.5, 0); w != 0 {
		t.Fatalf("clean signal yielded %v", w)
	}
	if w := AdaptiveFuseWeight(0.5, naturalNoiseVar); !close64(w, 0.25) {
		t.Fatalf("variance at the noise floor yielded %v, want half the ceiling", w)
	}
	prev := -1.0
	for _, v := range []float64{1e-6, 1e-4, 1e-3, 1e-2, 1e-1, 1.0} {
		w := AdaptiveFuseWeight(0.5, v)
		if w <= prev {
			t.Fatalf("weight not increasing in variance at v=%v: %v <= %v", v, w, prev)
		}
		if w >= 0.5 {
			t.Fatalf("weight %v reached the ceiling at v=%v", w, v)
		}
		prev = w
	}
}

// TestFeatureVariance: the per-run signal-confidence estimator is zero
// for degenerate runs and matches the hand-computed population variance.
func TestFeatureVariance(t *testing.T) {
	if v := featureVariance(nil); v != 0 {
		t.Fatalf("nil samples: %v", v)
	}
	if v := featureVariance([]dcgm.Sample{{FP32Active: 0.5}}); v != 0 {
		t.Fatalf("single sample: %v", v)
	}
	// fp = {0.2, 0.4} (var 0.01), dram = {0.1, 0.1} (var 0) → mean 0.005.
	s := []dcgm.Sample{
		{FP32Active: 0.2, DRAMActive: 0.1},
		{FP32Active: 0.4, DRAMActive: 0.1},
	}
	if v := featureVariance(s); !close64(v, 0.005) {
		t.Fatalf("variance %v, want 0.005", v)
	}
}

// TestAdaptiveZeroCeilingBitIdentical is the acceptance differential:
// FuseAdaptive with a zero FuseStatic ceiling must be byte-for-byte the
// plain streaming governor — the adaptive machinery vanishes entirely at
// weight 0.
func TestAdaptiveZeroCeilingBitIdentical(t *testing.T) {
	m := quickModels(t)
	plain, err := New(sim.New(sim.GA100(), 20), m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := plain.Run(context.Background(), workloads.PhaseShifting(4, 16))
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.FuseAdaptive = true // ceiling FuseStatic stays 0
	adaptive, err := New(sim.New(sim.GA100(), 20), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotRep, err := adaptive.Run(context.Background(), workloads.PhaseShifting(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	if gotRep != wantRep {
		t.Fatalf("zero-ceiling adaptive run diverged:\nadaptive %+v\nplain    %+v", gotRep, wantRep)
	}
	if adaptive.Selection() != plain.Selection() {
		t.Fatalf("selection %+v != plain %+v", adaptive.Selection(), plain.Selection())
	}
}

// TestAdaptiveFusedRun: a nonzero ceiling with adaptive weighting still
// completes the shifting stream and lands on a supported clock.
func TestAdaptiveFusedRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FuseStatic = 0.4
	cfg.FuseAdaptive = true
	dev := sim.New(sim.GA100(), 19)
	g, err := New(dev, quickModels(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), workloads.PhaseShifting(4, 12))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 12 || rep.TunedRuns < 1 {
		t.Fatalf("adaptive fused loop: %+v", rep)
	}
	if !sim.GA100().IsSupported(dev.Clock()) {
		t.Fatalf("device left at unsupported clock %v", dev.Clock())
	}
}
