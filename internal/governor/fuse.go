package governor

import (
	"gpudvfs/internal/backend"
	"gpudvfs/internal/dcgm"
)

// FuseSample blends statically derived workload traits into a dynamic
// telemetry mean: each fused feature is (1-w)·dynamic + w·static. The
// DNN's input features stay exactly the measured quantities — fusion moves
// the feature point toward what static analysis says the kernel's work
// volumes imply, which corrects a profiling run whose telemetry caught the
// workload in an unrepresentative stretch (warm-up, a host-bound prefix)
// without changing the models or the selection algorithm.
//
// The fused fp_active is distributed over the FP64/FP32 pipe features in
// the dynamic sample's own proportions, so a double-precision kernel stays
// double-precision after fusion; with no dynamic FP activity to apportion
// by, the static activity lands on the FP32 pipe. Static occupancy is
// blended only when the traits carry one. All other telemetry fields
// (clocks, power, PCIe) pass through untouched: static analysis has no
// opinion on them.
func FuseSample(dyn dcgm.Sample, tr backend.StaticTraits, w float64) dcgm.Sample {
	out := dyn
	dynFP := dyn.FPActive()
	fusedFP := (1-w)*dynFP + w*tr.FPActive
	if dynFP > 0 {
		scale := fusedFP / dynFP
		out.FP64Active = dyn.FP64Active * scale
		out.FP32Active = dyn.FP32Active * scale
	} else {
		out.FP32Active = fusedFP
	}
	out.DRAMActive = (1-w)*dyn.DRAMActive + w*tr.DRAMActive
	if tr.Occupancy > 0 {
		out.SMOccupancy = (1-w)*dyn.SMOccupancy + w*tr.Occupancy
	}
	return out
}

// naturalNoiseVar is the variance scale of the features' clean-signal
// telemetry wobble (σ ≈ 0.04 per §4.2's invariance analysis): per-sample
// feature variance at this level halves the adaptive fusion weight, far
// below it the dynamic signal is trusted nearly outright.
const naturalNoiseVar = 0.04 * 0.04

// AdaptiveFuseWeight derives the fusion blend weight from observed signal
// confidence: w = ceiling · v/(v+v₀), where v is the per-sample feature
// variance of the profiling telemetry and v₀ the natural noise floor.
// Clean telemetry (v → 0) yields w → 0 — trust the measurement; noisy
// telemetry (v ≫ v₀) saturates toward the ceiling — lean on the static
// traits that noise cannot corrupt. A ceiling of 0 yields identically 0,
// which keeps the adaptive governor bit-identical to the fusion-free one.
func AdaptiveFuseWeight(ceiling, variance float64) float64 {
	if ceiling <= 0 || variance <= 0 {
		return 0
	}
	return ceiling * variance / (variance + naturalNoiseVar)
}

// featureVariance is the mean of the population variances of the two
// selection features (fp_active, dram_active) across a run's samples —
// the signal-confidence input to adaptive fusion and phase noise
// estimates. Zero for runs with fewer than two samples.
func featureVariance(samples []dcgm.Sample) float64 {
	n := float64(len(samples))
	if n < 2 {
		return 0
	}
	var sumF, sqF, sumD, sqD float64
	for _, s := range samples {
		f, d := s.FPActive(), s.DRAMActive
		sumF += f
		sqF += f * f
		sumD += d
		sqD += d * d
	}
	mf, md := sumF/n, sumD/n
	v := (sqF/n - mf*mf + sqD/n - md*md) / 2
	if v < 0 {
		return 0
	}
	return v
}

// fuseWeight resolves the blend weight for one tune: the fixed FuseStatic
// by default, or the noise-adaptive weight (FuseStatic as ceiling) derived
// from the profiling run's own sample variance when FuseAdaptive is set.
func (g *Governor) fuseWeight(run dcgm.Run) float64 {
	if !g.cfg.FuseAdaptive {
		return g.cfg.FuseStatic
	}
	return AdaptiveFuseWeight(g.cfg.FuseStatic, featureVariance(run.Samples))
}
