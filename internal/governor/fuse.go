package governor

import (
	"gpudvfs/internal/backend"
	"gpudvfs/internal/dcgm"
)

// FuseSample blends statically derived workload traits into a dynamic
// telemetry mean: each fused feature is (1-w)·dynamic + w·static. The
// DNN's input features stay exactly the measured quantities — fusion moves
// the feature point toward what static analysis says the kernel's work
// volumes imply, which corrects a profiling run whose telemetry caught the
// workload in an unrepresentative stretch (warm-up, a host-bound prefix)
// without changing the models or the selection algorithm.
//
// The fused fp_active is distributed over the FP64/FP32 pipe features in
// the dynamic sample's own proportions, so a double-precision kernel stays
// double-precision after fusion; with no dynamic FP activity to apportion
// by, the static activity lands on the FP32 pipe. Static occupancy is
// blended only when the traits carry one. All other telemetry fields
// (clocks, power, PCIe) pass through untouched: static analysis has no
// opinion on them.
func FuseSample(dyn dcgm.Sample, tr backend.StaticTraits, w float64) dcgm.Sample {
	out := dyn
	dynFP := dyn.FPActive()
	fusedFP := (1-w)*dynFP + w*tr.FPActive
	if dynFP > 0 {
		scale := fusedFP / dynFP
		out.FP64Active = dyn.FP64Active * scale
		out.FP32Active = dyn.FP32Active * scale
	} else {
		out.FP32Active = fusedFP
	}
	out.DRAMActive = (1-w)*dyn.DRAMActive + w*tr.DRAMActive
	if tr.Occupancy > 0 {
		out.SMOccupancy = (1-w)*dyn.SMOccupancy + w*tr.Occupancy
	}
	return out
}
