package governor

import (
	"sync"
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/trace"
	"gpudvfs/internal/workloads"
)

// Shared quick models for the governor tests (training once per process).
var (
	modelsOnce sync.Once
	testModels *core.Models
	modelsErr  error
)

func quickModels(t testing.TB) *core.Models {
	t.Helper()
	modelsOnce.Do(func() {
		dev := sim.New(sim.GA100(), 51)
		coll := dcgm.NewCollector(dev, dcgm.Config{
			Freqs:            []float64{510, 705, 900, 1095, 1290, 1410},
			Runs:             2,
			MaxSamplesPerRun: 6,
			Seed:             52,
		})
		nw, err := workloads.ByName("NW")
		if err != nil {
			modelsErr = err
			return
		}
		runs, err := coll.CollectAll(backend.Workloads([]sim.KernelProfile{workloads.DGEMM(), workloads.STREAM(), nw}))
		if err != nil {
			modelsErr = err
			return
		}
		ds, err := dataset.Build(sim.GA100().Spec(), runs, dataset.Options{})
		if err != nil {
			modelsErr = err
			return
		}
		sds, err := dataset.Build(sim.GA100().Spec(), runs, dataset.Options{PerSample: true})
		if err != nil {
			modelsErr = err
			return
		}
		testModels, modelsErr = core.TrainSplit(sds, ds, core.TrainOptions{
			PowerEpochs: 30, TimeEpochs: 15, Hidden: []int{24, 24}, Seed: 1,
		})
	})
	if modelsErr != nil {
		t.Fatal(modelsErr)
	}
	return testModels
}

func TestNewValidation(t *testing.T) {
	dev := sim.New(sim.GA100(), 1)
	m := quickModels(t)
	if _, err := New(nil, m, DefaultConfig()); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := New(dev, nil, DefaultConfig()); err == nil {
		t.Fatal("nil models accepted")
	}
	if _, err := New(dev, m, Config{}); err == nil {
		t.Fatal("missing objective accepted")
	}
	if _, err := New(dev, m, Config{Objective: objective.EDP{}, DriftTolerance: 1.5}); err == nil {
		t.Fatal("tolerance > 1 accepted")
	}
	if _, err := New(dev, m, Config{Objective: objective.EDP{}, ReprofileAfter: -1}); err == nil {
		t.Fatal("negative hysteresis accepted")
	}
}

func TestTuneAppliesClock(t *testing.T) {
	dev := sim.New(sim.GA100(), 2)
	g, err := New(dev, quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := g.Tune(workloads.LAMMPS())
	if err != nil {
		t.Fatal(err)
	}
	if dev.Clock() != sel.FreqMHz {
		t.Fatalf("device at %v MHz, selection %v", dev.Clock(), sel.FreqMHz)
	}
	if !sim.GA100().IsSupported(sel.FreqMHz) {
		t.Fatalf("selected unsupported clock %v", sel.FreqMHz)
	}
	if g.Stats().Tunes != 1 {
		t.Fatalf("tunes = %d", g.Stats().Tunes)
	}
}

func TestStableWorkloadDoesNotRetune(t *testing.T) {
	dev := sim.New(sim.GA100(), 3)
	g, err := New(dev, quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	app := workloads.LAMMPS()
	if _, err := g.Tune(app); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		out, err := g.ProcessRun(app)
		if err != nil {
			t.Fatal(err)
		}
		if out.Retuned {
			t.Fatalf("run %d retuned on a stable workload", i)
		}
	}
	if g.Stats().Retunes != 0 {
		t.Fatalf("retunes = %d", g.Stats().Retunes)
	}
}

// TestInputSizeChangeDoesNotRetune pins the paper's size-invariance claim
// at the governor level: a 4× larger input is not drift.
func TestInputSizeChangeDoesNotRetune(t *testing.T) {
	dev := sim.New(sim.GA100(), 4)
	g, err := New(dev, quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	app := workloads.STREAM()
	if _, err := g.Tune(app); err != nil {
		t.Fatal(err)
	}
	bigger, err := app.WithInputScale(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		out, err := g.ProcessRun(bigger)
		if err != nil {
			t.Fatal(err)
		}
		if out.Retuned {
			t.Fatalf("run %d retuned on an input-size change", i)
		}
	}
}

// TestCharacterChangeRetunes pins the governor's purpose: swapping a
// compute-bound phase for a memory-bound one is drift and triggers a
// re-tune after the hysteresis window.
func TestCharacterChangeRetunes(t *testing.T) {
	dev := sim.New(sim.GA100(), 5)
	cfg := DefaultConfig()
	cfg.ReprofileAfter = 2
	g, err := New(dev, quickModels(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Tune(workloads.DGEMM()); err != nil {
		t.Fatal(err)
	}
	retunedAt := -1
	for i := 0; i < 5; i++ {
		out, err := g.ProcessRun(workloads.STREAM())
		if err != nil {
			t.Fatal(err)
		}
		if !out.Drifted && retunedAt < 0 {
			t.Fatalf("run %d: memory-bound phase not flagged as drift", i)
		}
		if out.Retuned {
			retunedAt = i
			break
		}
	}
	if retunedAt != 1 { // hysteresis 2 → second drifted run retunes
		t.Fatalf("retuned at run %d, want 1", retunedAt)
	}
	if g.Stats().Retunes != 1 || g.Stats().Tunes != 2 {
		t.Fatalf("stats = %+v", g.Stats())
	}
}

func TestProcessRunAutoTunes(t *testing.T) {
	dev := sim.New(sim.GA100(), 6)
	g, err := New(dev, quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.ProcessRun(workloads.NAMD())
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().Tunes != 1 {
		t.Fatal("ProcessRun did not auto-tune")
	}
	if out.TimeSec <= 0 || out.EnergyJoules <= 0 {
		t.Fatalf("degenerate outcome %+v", out)
	}
}

func TestStatsAccumulate(t *testing.T) {
	dev := sim.New(sim.GA100(), 7)
	g, err := New(dev, quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	app := workloads.BERT()
	var energy float64
	for i := 0; i < 3; i++ {
		out, err := g.ProcessRun(app)
		if err != nil {
			t.Fatal(err)
		}
		energy += out.EnergyJoules
	}
	s := g.Stats()
	if s.Runs != 3 {
		t.Fatalf("runs = %d", s.Runs)
	}
	if s.EnergyJoules != energy {
		t.Fatalf("energy %v != %v", s.EnergyJoules, energy)
	}
}

func TestRelDiff(t *testing.T) {
	if relDiff(1, 1) != 0 {
		t.Fatal("equal values")
	}
	if got := relDiff(1.2, 1.0); got < 0.19 || got > 0.21 {
		t.Fatalf("relDiff(1.2,1) = %v", got)
	}
	// Absolute floor avoids divide-by-near-zero blowups.
	if got := relDiff(0.01, 0.001); got > 0.5 {
		t.Fatalf("near-zero diff exaggerated: %v", got)
	}
}

func TestTunePhased(t *testing.T) {
	dev := sim.New(sim.GA100(), 8)
	g, err := New(dev, quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.TunePhased(workloads.LAMMPS(), trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.GA100().IsSupported(res.Selection.FreqMHz) {
		t.Fatalf("unsupported clock %v", res.Selection.FreqMHz)
	}
	if len(res.Segments) == 0 {
		t.Fatal("no segments")
	}
	if res.DominantShare <= 0 || res.DominantShare > 1 {
		t.Fatalf("dominant share %v", res.DominantShare)
	}
	if dev.Clock() != res.Selection.FreqMHz {
		t.Fatal("clock not applied")
	}
	if g.Stats().Tunes != 1 {
		t.Fatalf("tunes = %d", g.Stats().Tunes)
	}
}

// TestTunePhasedHostHeavy pins the point of phase-aware tuning: for a
// host-heavy application the profiling stream splits into GPU-busy and
// idle phases, and the dominant-phase share reflects the mix.
func TestTunePhasedHostHeavy(t *testing.T) {
	dev := sim.New(sim.GA100(), 9)
	g, err := New(dev, quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.TunePhased(workloads.GROMACS(), trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) < 2 {
		t.Skipf("phase detector merged the stream (share %v)", res.DominantShare)
	}
	if res.DominantShare >= 1 {
		t.Fatalf("host-heavy app should not be single-phase: %v", res.DominantShare)
	}
}

// TestTuneMatchesOnlinePredictSelection is the differential contract for
// the governor's sweeper-based serving path: Tune on one device must pick
// bit-for-bit the selection that the allocating OnlinePredict +
// SelectFrequency formulation picks on an identically seeded device.
func TestTuneMatchesOnlinePredictSelection(t *testing.T) {
	m := quickModels(t)
	cfg := Config{Objective: objective.ED2P{}, Threshold: -1, ProfileSeed: 90}

	devRef := sim.New(sim.GA100(), 91)
	on, err := core.OnlinePredict(devRef, m, workloads.LAMMPS(), dcgm.Config{Seed: cfg.ProfileSeed})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SelectFrequency(on.Predicted, cfg.Objective, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}

	devGov := sim.New(sim.GA100(), 91)
	g, err := New(devGov, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Tune(workloads.LAMMPS())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("governor selection %+v diverged from OnlinePredict selection %+v", got, want)
	}
	if s := g.Stats(); s.Clamped != on.Clamped || s.ClampedCore != on.ClampedCore || s.ClampedMem != on.ClampedMem {
		t.Fatalf("governor clamps (%d core %d mem %d), OnlinePredict (%d core %d mem %d)",
			s.Clamped, s.ClampedCore, s.ClampedMem, on.Clamped, on.ClampedCore, on.ClampedMem)
	}
	// A core-only governor attributes every clamp to the core axis.
	if s := g.Stats(); s.ClampedMem != 0 || s.ClampedCore != s.Clamped {
		t.Fatalf("core-only governor has memory-axis clamps: %+v", s)
	}

	// Re-tunes accumulate the counter and keep matching (next tune uses the
	// advanced seed schedule, so compare against a fresh reference).
	on2, err := core.OnlinePredict(devRef, m, workloads.STREAM(), dcgm.Config{Seed: cfg.ProfileSeed + 1})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := core.SelectFrequency(on2.Predicted, cfg.Objective, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := g.Tune(workloads.STREAM())
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want2 {
		t.Fatalf("re-tune selection %+v diverged from reference %+v", got2, want2)
	}
	if s := g.Stats(); s.Clamped != on.Clamped+on2.Clamped || s.ClampedCore != s.Clamped || s.ClampedMem != 0 {
		t.Fatalf("clamp counters %+v, want %d total, all on the core axis", s, on.Clamped+on2.Clamped)
	}
}

// TestTuneGridMemAxis runs the governor over the full (core × mem) grid:
// the selection must match the OnlinePredictGrid + SelectFrequency
// formulation bit-for-bit, the device must end up pinned to the selected
// memory P-state, and the clamp counters must carry the per-axis split.
func TestTuneGridMemAxis(t *testing.T) {
	m := quickModels(t)
	arch := sim.GA100().Spec()
	cfg := Config{Objective: objective.ED2P{}, Threshold: -1, ProfileSeed: 90, MemFreqs: arch.MemClocks()}

	devRef := sim.New(sim.GA100(), 91)
	on, err := core.OnlinePredictGrid(devRef, m, workloads.LAMMPS(), dcgm.Config{Seed: cfg.ProfileSeed}, arch.MemClocks())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SelectFrequency(on.Predicted, cfg.Objective, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}

	devGov := sim.New(sim.GA100(), 91)
	g, err := New(devGov, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Tune(workloads.LAMMPS())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("grid governor selection %+v diverged from OnlinePredictGrid selection %+v", got, want)
	}
	if got.MemFreqMHz == 0 {
		t.Fatal("grid selection carries no memory clock")
	}
	if devGov.MemClock() != got.MemFreqMHz {
		t.Fatalf("device memory clock %v, selection %v", devGov.MemClock(), got.MemFreqMHz)
	}
	s := g.Stats()
	if s.Clamped != s.ClampedCore+s.ClampedMem {
		t.Fatalf("clamp split %d core + %d mem does not sum to %d", s.ClampedCore, s.ClampedMem, s.Clamped)
	}
	if s.Clamped != on.Clamped || s.ClampedCore != on.ClampedCore || s.ClampedMem != on.ClampedMem {
		t.Fatalf("governor clamps (%d core %d mem %d), OnlinePredictGrid (%d core %d mem %d)",
			s.Clamped, s.ClampedCore, s.ClampedMem, on.Clamped, on.ClampedCore, on.ClampedMem)
	}
}
