package governor

import (
	"context"
	"testing"

	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/workloads"
)

// BenchmarkPhaseRePin measures the zero-reprofile fast path — fingerprint,
// cache lookup, pin, baseline install — alternating between two memoized
// phases so every iteration is a genuine re-pin, and pins its
// zero-allocation contract: re-pinning a recognized phase allocates
// nothing.
func BenchmarkPhaseRePin(b *testing.B) {
	g, err := New(sim.New(sim.GA100(), 29), quickModels(b), memoConfig())
	if err != nil {
		b.Fatal(err)
	}
	// Learn the two-phase alphabet, then re-pin from the representative
	// features the cache itself reports — guaranteed bucket matches.
	if _, err := g.Run(context.Background(), workloads.PhaseShifting(4, 16)); err != nil {
		b.Fatal(err)
	}
	phases := g.Phases()
	if len(phases) < 2 {
		b.Fatalf("memoized %d phases, want at least 2", len(phases))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := phases[i%2]
		if _, ok, err := g.TryRePin(p[0], p[1]); err != nil || !ok {
			b.Fatalf("re-pin missed (ok=%v err=%v)", ok, err)
		}
	}
	b.StopTimer()
	if n := testing.AllocsPerRun(100, func() {
		p := phases[0]
		if _, ok, err := g.TryRePin(p[0], p[1]); err != nil || !ok {
			b.Fatal("re-pin missed")
		}
	}); n != 0 {
		b.Fatalf("re-pin fast path allocates %.1f times per op", n)
	}
}
