package governor

import (
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/workloads"
)

// BenchmarkGovernorStep measures one steady-state iteration of the
// streaming control loop — governed execution, telemetry through the
// online detector, drift check — and pins the loop's zero-allocation
// contract: after the initial tune and stream setup, governing allocates
// nothing per run.
func BenchmarkGovernorStep(b *testing.B) {
	g, err := New(sim.New(sim.GA100(), 21), quickModels(b), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var app backend.Workload = workloads.DGEMM()
	var rep RunReport
	// Warm up: initial tune, then one governed run to build the stream
	// session and detector.
	for i := 0; i < 2; i++ {
		if err := g.step(app, &rep); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.step(app, &rep); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if n := testing.AllocsPerRun(100, func() {
		if err := g.step(app, &rep); err != nil {
			b.Fatal(err)
		}
	}); n != 0 {
		b.Fatalf("steady-state governor step allocates %.1f times per run", n)
	}
}
