package governor

import (
	"context"
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/obs"
	"gpudvfs/internal/workloads"
)

// Sequence is the loop's canonical stream implementation; assert the
// contract here (workloads cannot import governor without a cycle).
var _ WorkloadStream = (*workloads.Sequence)(nil)

// TestRunMatchesTuneOnHomogeneousStream is the tentpole's bit-identity
// pin: on a stream of identical executions, the streaming loop's initial
// tune is byte-for-byte the one-shot Tune — same profiling seed schedule,
// same prediction path, same selection — and nothing in the stream
// triggers a re-tune.
func TestRunMatchesTuneOnHomogeneousStream(t *testing.T) {
	m := quickModels(t)
	oneShot, err := New(sim.New(sim.GA100(), 11), m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := oneShot.Tune(workloads.DGEMM())
	if err != nil {
		t.Fatal(err)
	}

	loop, err := New(sim.New(sim.GA100(), 11), m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	items := make([]backend.Workload, n)
	for i := range items {
		items[i] = workloads.DGEMM()
	}
	rep, err := loop.Run(context.Background(), workloads.NewSequence(items...))
	if err != nil {
		t.Fatal(err)
	}
	if loop.Selection() != want {
		t.Fatalf("loop selection %+v, one-shot %+v", loop.Selection(), want)
	}
	if rep.Runs != n || rep.TunedRuns != 1 {
		t.Fatalf("runs=%d tuned=%d, want %d/1", rep.Runs, rep.TunedRuns, n)
	}
	if rep.Retunes != 0 || rep.PhaseShifts != 0 {
		t.Fatalf("homogeneous stream retuned: %+v", rep)
	}
	if loop.Stats().Tunes != 1 {
		t.Fatalf("tunes = %d", loop.Stats().Tunes)
	}
	if rep.EnergyJoules <= 0 || rep.TimeSeconds <= 0 {
		t.Fatalf("empty ledger: %+v", rep)
	}
}

// TestRunRetunesOnPhaseShift drives the loop over an alternating
// compute/memory stream: the online detector flags the character change
// at each phase boundary (the telemetry stream is continuous across
// runs), the governor re-profiles, and the governed clock follows the
// phase. The same stream under an effectively infinite cooldown is the
// one-shot governor, which must spend more energy: it keeps the
// compute-phase clock through every memory phase.
func TestRunRetunesOnPhaseShift(t *testing.T) {
	m := quickModels(t)
	const period, total = 4, 16

	streaming, err := New(sim.New(sim.GA100(), 12), m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := streaming.Run(context.Background(), workloads.PhaseShifting(period, total))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != total {
		t.Fatalf("runs = %d, want %d", rep.Runs, total)
	}
	if rep.PhaseShifts < 2 {
		t.Fatalf("detector flagged %d shifts on a 4-phase stream", rep.PhaseShifts)
	}
	if rep.Retunes < 2 {
		t.Fatalf("governor retuned %d times on a 4-phase stream", rep.Retunes)
	}
	if got := streaming.Stats().PhaseShifts; got != rep.PhaseShifts {
		t.Fatalf("stats shifts %d != report %d", got, rep.PhaseShifts)
	}

	cfg := DefaultConfig()
	cfg.RetuneCooldown = total + 1 // cooldown outlives the stream: one-shot
	oneShot, err := New(sim.New(sim.GA100(), 12), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oneRep, err := oneShot.Run(context.Background(), workloads.PhaseShifting(period, total))
	if err != nil {
		t.Fatal(err)
	}
	if oneRep.Retunes != 0 {
		t.Fatalf("cooldown failed to suppress retunes: %+v", oneRep)
	}
	if rep.EnergyJoules >= oneRep.EnergyJoules {
		t.Fatalf("streaming energy %.1f J not below one-shot %.1f J",
			rep.EnergyJoules, oneRep.EnergyJoules)
	}
}

// TestRunMultiTenantStaysCalm: run-to-run interference wobble around one
// base profile must not thrash the governor — the hysteresis plus
// cooldown keep re-tunes far below the run count.
func TestRunMultiTenantStaysCalm(t *testing.T) {
	g, err := New(sim.New(sim.GA100(), 13), quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const total = 12
	rep, err := g.Run(context.Background(), workloads.MultiTenant(workloads.LAMMPS(), total, 7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != total {
		t.Fatalf("runs = %d", rep.Runs)
	}
	if rep.Retunes > total/3 {
		t.Fatalf("interference thrashed the governor: %d retunes in %d runs", rep.Retunes, total)
	}
}

// TestRunPhasedTuning exercises the loop with dominant-phase tuning: it
// must complete, tune at least once, and keep the device at a supported
// clock.
func TestRunPhasedTuning(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhasedTuning = true
	dev := sim.New(sim.GA100(), 14)
	g, err := New(dev, quickModels(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), workloads.PhaseShifting(3, 9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TunedRuns < 1 || g.Stats().Tunes < 1 {
		t.Fatalf("no tunes: %+v", rep)
	}
	if !sim.GA100().IsSupported(dev.Clock()) {
		t.Fatalf("device left at unsupported clock %v", dev.Clock())
	}
}

// TestRunMetrics wires a Metrics bundle through a shifting stream and
// checks the counters track the report.
func TestRunMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Metrics = NewMetrics(reg)
	g, err := New(sim.New(sim.GA100(), 15), quickModels(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), workloads.PhaseShifting(4, 12))
	if err != nil {
		t.Fatal(err)
	}
	if got := int(cfg.Metrics.GovernedRuns.Value()); got != rep.Runs-rep.TunedRuns {
		t.Fatalf("governed counter %d, report %d", got, rep.Runs-rep.TunedRuns)
	}
	if got := int(cfg.Metrics.Retunes.Value()); got != rep.Retunes {
		t.Fatalf("retune counter %d, report %d", got, rep.Retunes)
	}
	if got := int(cfg.Metrics.PhaseShifts.Value()); got != rep.PhaseShifts {
		t.Fatalf("shift counter %d, report %d", got, rep.PhaseShifts)
	}
	if int(cfg.Metrics.TuneSeconds.Count()) != g.Stats().Tunes {
		t.Fatalf("tune histogram %d observations, %d tunes",
			cfg.Metrics.TuneSeconds.Count(), g.Stats().Tunes)
	}
}

func TestRunContextCancelled(t *testing.T) {
	g, err := New(sim.New(sim.GA100(), 16), quickModels(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Run(ctx, workloads.PhaseShifting(2, 4)); err == nil {
		t.Fatal("cancelled context not surfaced")
	}
}

func TestStreamingConfigValidation(t *testing.T) {
	m := quickModels(t)
	dev := sim.New(sim.GA100(), 17)
	for _, cfg := range []Config{
		{Objective: objective.EDP{}, PhaseWindow: 1},
		{Objective: objective.EDP{}, RetuneCooldown: -1},
		{Objective: objective.EDP{}, FuseStatic: 1.0},
		{Objective: objective.EDP{}, FuseStatic: -0.1},
	} {
		if _, err := New(dev, m, cfg); err == nil {
			t.Fatalf("Config %+v accepted", cfg)
		}
	}
}

// TestDriftHysteresisTable is the satellite's table over the hysteresis
// boundary: exactly ReprofileAfter consecutive drifted observations
// demand a re-tune; any clean observation resets the count, so transient
// spikes never accumulate.
func TestDriftHysteresisTable(t *testing.T) {
	cases := []struct {
		name     string
		after    int
		seq      []bool // drift verdict per observation
		demandAt int    // index of first demand, -1 for never
	}{
		{"exactly at boundary", 3, []bool{true, true, true}, 2},
		{"one below boundary", 3, []bool{true, true, false, true, true}, -1},
		{"reset then full streak", 3, []bool{true, true, false, true, true, true}, 5},
		{"transient spikes suppressed", 2, []bool{true, false, true, false, true, false}, -1},
		{"immediate with hysteresis 1", 1, []bool{false, false, true}, 2},
		{"streak past boundary keeps demanding", 2, []bool{true, true, true}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := &Governor{cfg: Config{ReprofileAfter: tc.after}}
			got := -1
			for i, d := range tc.seq {
				if g.noteDrift(d) && got == -1 {
					got = i
				}
			}
			if got != tc.demandAt {
				t.Fatalf("first demand at %d, want %d", got, tc.demandAt)
			}
			want := 0
			for _, d := range tc.seq {
				if d {
					want++
				}
			}
			if g.stats.DriftedRuns != want {
				t.Fatalf("drifted runs %d, want %d", g.stats.DriftedRuns, want)
			}
		})
	}
}

// TestDriftedFeaturesBoundary pins the tolerance arithmetic on both sides
// of the threshold, including the absolute floor for near-idle activity.
func TestDriftedFeaturesBoundary(t *testing.T) {
	g := &Governor{cfg: Config{DriftTolerance: 0.25}}
	g.baseline.FP64Active = 0.8 // FPActive 0.8
	g.baseline.DRAMActive = 0.4
	cases := []struct {
		name     string
		fp, dram float64
		want     bool
	}{
		{"inside tolerance", 0.8 * 1.24, 0.4, false},
		{"fp over tolerance", 0.8 * 1.26, 0.4, true},
		{"dram over tolerance", 0.8, 0.4 * 0.74, true},
		{"both at baseline", 0.8, 0.4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := g.driftedFeatures(tc.fp, tc.dram); got != tc.want {
				t.Fatalf("driftedFeatures(%v, %v) = %v", tc.fp, tc.dram, got)
			}
		})
	}
	// Near-idle pipes compare on the absolute eps scale: a 0.05→0.08 move
	// is wobble, not drift, even though it is 60% in relative terms.
	idle := &Governor{cfg: Config{DriftTolerance: 0.25}}
	idle.baseline.FP64Active = 0.05
	idle.baseline.DRAMActive = 0.05
	if idle.driftedFeatures(0.08, 0.05) {
		t.Fatal("near-idle wobble flagged as drift")
	}
}
