package governor

import (
	"context"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/trace"
)

// WorkloadStream feeds the Run loop one workload execution at a time.
// Next returns the next item to execute, or ok=false when the stream is
// exhausted. Implementations must not allocate per call if the governed
// loop is to stay allocation-free (workloads.Sequence qualifies).
type WorkloadStream interface {
	Next() (backend.Workload, bool)
}

// RunReport is the loop's complete energy/perf ledger: every stream item
// is accounted exactly once, whether it executed at the governed clocks or
// as a max-clock profiling run (a re-tune does not execute the item twice
// — the profiling run *is* that item's execution).
type RunReport struct {
	Runs      int // stream items executed (governed + profiling runs)
	TunedRuns int // items that executed at the maximum clock as profiling runs
	Retunes   int // mid-stream re-tunes: re-profiles and cache re-pins
	RePins    int // retunes satisfied from the phase cache, no profiling run
	// DriftRetunes / ShiftRetunes attribute retunes to their trigger
	// sources, each counted independently — a retune demanded by both
	// signals in one step increments both, so the counters match drift
	// hysteresis and detector ground truth.
	DriftRetunes int
	ShiftRetunes int
	PhaseShifts  int // intra-run shifts flagged by the online detector
	DriftedRuns  int // governed runs whose mean features drifted off baseline

	EnergyJoules float64 // total energy across all items
	TimeSeconds  float64 // total execution time across all items
}

// Run is the streaming control loop — the generalization the one-shot
// paths specialize: consume workload executions from stream, keep the
// device pinned at the model-selected clocks, watch the per-sample
// telemetry through the online change-point detector, and re-run the
// paper's online phase mid-stream when a phase shift is flagged or mean
// drift persists past the hysteresis, subject to the retune cooldown.
//
// The first item (and every item after a pending re-tune) executes as the
// profiling run at the maximum clock; all other items execute at the
// governed clocks through a persistent telemetry stream. The steady-state
// iteration allocates nothing: one sampler session, one detector, one
// pre-bound yield closure, reused prediction buffers.
//
// Run returns the report accumulated so far alongside any error; a
// cancelled context returns the context's error.
func (g *Governor) Run(ctx context.Context, stream WorkloadStream) (RunReport, error) {
	var rep RunReport
	for {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		app, ok := stream.Next()
		if !ok {
			return rep, nil
		}
		if err := g.step(app, &rep); err != nil {
			return rep, err
		}
	}
}

// streamState lazily builds the loop's persistent telemetry session: a
// dcgm.Stream whose sampler (and noise stream) survives across runs, the
// online detector, and the yield closure binding both — constructed once
// so the steady-state loop closes over nothing per run.
func (g *Governor) streamState() (*dcgm.Stream, error) {
	if g.strm != nil {
		return g.strm, nil
	}
	strm, err := dcgm.NewCollector(g.dev, dcgm.Config{Seed: g.cfg.ProfileSeed + 1000}).Stream()
	if err != nil {
		return nil, err
	}
	det, err := trace.NewOnline(trace.OnlineOptions{Window: g.cfg.PhaseWindow})
	if err != nil {
		return nil, err
	}
	g.strm, g.det = strm, det
	g.onSample = func(s backend.Sample) {
		if g.det.PushSample(s) {
			g.runShifts++
		}
		fp, dr := s.FPActive(), s.DRAMActive
		g.obsSumFP += fp
		g.obsSumDR += dr
		g.obsSqFP += fp * fp
		g.obsSqDR += dr * dr
		g.obsCount++
	}
	return g.strm, nil
}

// step executes one stream item: as a (re-)profiling run when the
// governor is untuned or a re-tune is pending, as a governed run
// otherwise.
func (g *Governor) step(app backend.Workload, rep *RunReport) error {
	if !g.tuned || g.retune {
		return g.tuneStep(app, rep)
	}
	strm, err := g.streamState()
	if err != nil {
		return err
	}

	g.runShifts, g.obsCount = 0, 0
	g.obsSumFP, g.obsSumDR, g.obsSqFP, g.obsSqDR = 0, 0, 0, 0
	run, err := strm.Run(app, g.stats.Runs, g.onSample)
	if err != nil {
		return err
	}
	rep.Runs++
	rep.EnergyJoules += run.EnergyJoules
	rep.TimeSeconds += run.ExecTimeSec
	g.stats.Runs++
	g.stats.EnergyJoules += run.EnergyJoules
	g.stats.TimeSeconds += run.ExecTimeSec
	g.cfg.Metrics.governed(run.ExecTimeSec)

	drifted := false
	if g.obsCount > 0 {
		n := float64(g.obsCount)
		drifted = g.driftedFeatures(g.obsSumFP/n, g.obsSumDR/n)
	}
	demand := g.noteDrift(drifted)
	if drifted {
		rep.DriftedRuns++
		g.cfg.Metrics.drifted()
	}
	if g.runShifts > 0 {
		rep.PhaseShifts += g.runShifts
		g.stats.PhaseShifts += g.runShifts
		g.cfg.Metrics.shifts(g.runShifts)
	}
	g.sinceTune++
	// An intra-run shift is direct evidence of a change of character and
	// bypasses the mean-drift hysteresis; both signals wait out the
	// cooldown. A demanded retune first tries the phase cache: if the
	// incoming phase is memoized and fresh, its selection is re-pinned
	// right here — the retune is complete and the next item runs governed.
	// Otherwise the re-profile is scheduled for the next item, and the
	// phase identity observed now seeds the cache when that tune lands.
	if (demand || g.runShifts > 0) && g.sinceTune >= g.cfg.RetuneCooldown {
		if demand {
			g.pendingDrift = true
		}
		if g.runShifts > 0 {
			g.pendingShift = true
		}
		ok, err := g.rePin(rep)
		if err != nil {
			return err
		}
		if !ok {
			g.retune = true
		}
	}
	return nil
}

// tuneStep runs the online phase on this stream item: the profiling run
// at the maximum clock is the item's execution, accounted like any other
// run, and its telemetry re-selects the governed clocks.
func (g *Governor) tuneStep(app backend.Workload, rep *RunReport) error {
	wasTuned := g.tuned
	if _, err := g.sweeper(); err != nil {
		return err
	}
	run, err := g.profileAtMax(app)
	if err != nil {
		return err
	}
	rep.Runs++
	rep.TunedRuns++
	rep.EnergyJoules += run.EnergyJoules
	rep.TimeSeconds += run.ExecTimeSec

	if g.cfg.PhasedTuning {
		_, err = g.tunePhasedFrom(app, run, trace.Options{})
	} else {
		_, err = g.tuneFrom(app, run)
	}
	if err != nil {
		return err
	}
	g.memoize(featureVariance(run.Samples))
	// Stale pre-tune samples must not re-flag the shift just acted on.
	if g.det != nil {
		g.det.Reset()
	}
	g.sinceTune = 0
	g.retune = false
	if wasTuned {
		rep.Retunes++
		g.stats.Retunes++
		g.cfg.Metrics.retuned()
		g.commitTriggers(rep)
	}
	return nil
}
