package governor

import (
	"sync"
	"testing"

	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/trace"
	"gpudvfs/internal/workloads"
)

// TestTunePhasedConcurrentSharedSweeper pins the shared-sweeper concurrency
// contract: governors built over one *core.Models share a single memoized
// Sweeper (Models.SweeperFor), so concurrent TunePhased calls exercise the
// same pooled inference workspaces. Run under -race, every concurrent
// result must be bit-identical to a serial governor tuning the same
// workload on an identically seeded device.
func TestTunePhasedConcurrentSharedSweeper(t *testing.T) {
	m := quickModels(t)
	cases := []struct {
		app  sim.KernelProfile
		seed int64
	}{
		{workloads.LAMMPS(), 101},
		{workloads.GROMACS(), 102},
		{workloads.DGEMM(), 103},
		{workloads.STREAM(), 104},
		{workloads.NAMD(), 105},
		{workloads.LAMMPS(), 106}, // same app, different telemetry seed
	}

	type outcome struct {
		freq     float64
		energy   float64
		timePct  float64
		share    float64
		segments int
	}
	serial := make([]outcome, len(cases))
	for i, c := range cases {
		g, err := New(sim.New(sim.GA100(), c.seed), m, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.TunePhased(c.app, trace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = outcome{
			freq:     res.Selection.FreqMHz,
			energy:   res.Selection.EnergyPct,
			timePct:  res.Selection.TimePct,
			share:    res.DominantShare,
			segments: len(res.Segments),
		}
	}

	// Several passes widen the interleaving space the race detector sees.
	for pass := 0; pass < 3; pass++ {
		got := make([]outcome, len(cases))
		errs := make([]error, len(cases))
		var wg sync.WaitGroup
		for i, c := range cases {
			wg.Add(1)
			go func(i int, app sim.KernelProfile, seed int64) {
				defer wg.Done()
				g, err := New(sim.New(sim.GA100(), seed), m, DefaultConfig())
				if err != nil {
					errs[i] = err
					return
				}
				res, err := g.TunePhased(app, trace.Options{})
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = outcome{
					freq:     res.Selection.FreqMHz,
					energy:   res.Selection.EnergyPct,
					timePct:  res.Selection.TimePct,
					share:    res.DominantShare,
					segments: len(res.Segments),
				}
			}(i, c.app, c.seed)
		}
		wg.Wait()
		for i := range cases {
			if errs[i] != nil {
				t.Fatalf("pass %d, tuner %d: %v", pass, i, errs[i])
			}
			if got[i] != serial[i] {
				t.Fatalf("pass %d, tuner %d (%s): concurrent %+v != serial %+v",
					pass, i, cases[i].app.WorkloadName(), got[i], serial[i])
			}
		}
	}
}
