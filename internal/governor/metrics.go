package governor

import "gpudvfs/internal/obs"

// Metrics is the governor's observability surface: atomic counters and
// latency histograms registered on an obs.Registry. Every field is
// optional; a nil *Metrics (the default) disables instrumentation with no
// branches beyond a nil check, keeping the steady-state loop allocation-
// and contention-free.
type Metrics struct {
	GovernedRuns *obs.Counter // workload executions at the governed clocks
	PhaseShifts  *obs.Counter // intra-run shifts flagged by the online detector
	DriftedRuns  *obs.Counter // runs whose mean features drifted off baseline
	Retunes      *obs.Counter // mid-stream re-tunes: re-profiles and re-pins
	RePins       *obs.Counter // retunes satisfied from the phase cache
	DriftRetunes *obs.Counter // retunes demanded by drift hysteresis
	ShiftRetunes *obs.Counter // retunes demanded by the online detector

	PhaseHits      *obs.Counter // phase-cache lookups that re-pinned
	PhaseMisses    *obs.Counter // lookups that fell through to a re-profile
	PhaseStaleHits *obs.Counter // lookups whose entry's confidence had decayed
	PhaseEvictions *obs.Counter // entries displaced by the size bound or an alias

	RunSeconds  *obs.Histogram
	TuneSeconds *obs.Histogram // profiling-run duration per (re-)tune
}

// NewMetrics registers the governor series on reg and returns the bundle
// to hand to Config.Metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		GovernedRuns: reg.Counter("gpudvfs_governor_runs_total",
			"Workload executions at the governed clocks.", ""),
		PhaseShifts: reg.Counter("gpudvfs_governor_phase_shifts_total",
			"Intra-run phase shifts flagged by the streaming detector.", ""),
		DriftedRuns: reg.Counter("gpudvfs_governor_drifted_runs_total",
			"Governed runs whose mean features drifted off the profiling baseline.", ""),
		Retunes: reg.Counter("gpudvfs_governor_retunes_total",
			"Mid-stream retunes (re-profiles and cache re-pins) triggered by drift or phase shifts.", ""),
		RePins: reg.Counter("gpudvfs_governor_re_pins_total",
			"Retunes satisfied from the phase cache without a profiling run.", ""),
		DriftRetunes: reg.Counter("gpudvfs_governor_drift_retunes_total",
			"Retunes demanded by the mean-drift hysteresis (counted per trigger source).", ""),
		ShiftRetunes: reg.Counter("gpudvfs_governor_shift_retunes_total",
			"Retunes demanded by the online change-point detector (counted per trigger source).", ""),
		PhaseHits: reg.Counter("gpudvfs_governor_phase_hits_total",
			"Phase-cache lookups that re-pinned a memoized selection.", ""),
		PhaseMisses: reg.Counter("gpudvfs_governor_phase_misses_total",
			"Phase-cache lookups that fell through to a full re-profile.", ""),
		PhaseStaleHits: reg.Counter("gpudvfs_governor_phase_stale_hits_total",
			"Phase-cache lookups whose entry had decayed past the staleness bound.", ""),
		PhaseEvictions: reg.Counter("gpudvfs_governor_phase_evictions_total",
			"Phase-cache entries displaced by the size bound or a fingerprint alias.", ""),
		RunSeconds: reg.Histogram("gpudvfs_governor_run_seconds",
			"Execution time of governed workload runs.", "", nil),
		TuneSeconds: reg.Histogram("gpudvfs_governor_tune_seconds",
			"Profiling-run duration per (re-)tune, at the maximum clock.", "", nil),
	}
}

func (m *Metrics) governed(seconds float64) {
	if m == nil {
		return
	}
	if m.GovernedRuns != nil {
		m.GovernedRuns.Inc()
	}
	if m.RunSeconds != nil {
		m.RunSeconds.Observe(seconds)
	}
}

func (m *Metrics) tuned(seconds float64) {
	if m == nil {
		return
	}
	if m.TuneSeconds != nil {
		m.TuneSeconds.Observe(seconds)
	}
}

func (m *Metrics) shifts(n int) {
	if m == nil || m.PhaseShifts == nil || n <= 0 {
		return
	}
	m.PhaseShifts.Add(uint64(n))
}

func (m *Metrics) drifted() {
	if m == nil || m.DriftedRuns == nil {
		return
	}
	m.DriftedRuns.Inc()
}

func (m *Metrics) retuned() {
	if m == nil || m.Retunes == nil {
		return
	}
	m.Retunes.Inc()
}

func (m *Metrics) rePinned() {
	if m == nil || m.RePins == nil {
		return
	}
	m.RePins.Inc()
}

func (m *Metrics) driftRetuned() {
	if m == nil || m.DriftRetunes == nil {
		return
	}
	m.DriftRetunes.Inc()
}

func (m *Metrics) shiftRetuned() {
	if m == nil || m.ShiftRetunes == nil {
		return
	}
	m.ShiftRetunes.Inc()
}

func (m *Metrics) phaseHit() {
	if m == nil || m.PhaseHits == nil {
		return
	}
	m.PhaseHits.Inc()
}

func (m *Metrics) phaseMiss() {
	if m == nil || m.PhaseMisses == nil {
		return
	}
	m.PhaseMisses.Inc()
}

func (m *Metrics) phaseStale() {
	if m == nil || m.PhaseStaleHits == nil {
		return
	}
	m.PhaseStaleHits.Inc()
}

func (m *Metrics) phaseEvicted() {
	if m == nil || m.PhaseEvictions == nil {
		return
	}
	m.PhaseEvictions.Inc()
}
