package governor

import "gpudvfs/internal/obs"

// Metrics is the governor's observability surface: atomic counters and
// latency histograms registered on an obs.Registry. Every field is
// optional; a nil *Metrics (the default) disables instrumentation with no
// branches beyond a nil check, keeping the steady-state loop allocation-
// and contention-free.
type Metrics struct {
	GovernedRuns *obs.Counter // workload executions at the governed clocks
	PhaseShifts  *obs.Counter // intra-run shifts flagged by the online detector
	DriftedRuns  *obs.Counter // runs whose mean features drifted off baseline
	Retunes      *obs.Counter // mid-stream re-tunes (initial tune excluded)
	RunSeconds   *obs.Histogram
	TuneSeconds  *obs.Histogram // profiling-run duration per (re-)tune
}

// NewMetrics registers the governor series on reg and returns the bundle
// to hand to Config.Metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		GovernedRuns: reg.Counter("gpudvfs_governor_runs_total",
			"Workload executions at the governed clocks.", ""),
		PhaseShifts: reg.Counter("gpudvfs_governor_phase_shifts_total",
			"Intra-run phase shifts flagged by the streaming detector.", ""),
		DriftedRuns: reg.Counter("gpudvfs_governor_drifted_runs_total",
			"Governed runs whose mean features drifted off the profiling baseline.", ""),
		Retunes: reg.Counter("gpudvfs_governor_retunes_total",
			"Mid-stream re-profiles triggered by drift or phase shifts.", ""),
		RunSeconds: reg.Histogram("gpudvfs_governor_run_seconds",
			"Execution time of governed workload runs.", "", nil),
		TuneSeconds: reg.Histogram("gpudvfs_governor_tune_seconds",
			"Profiling-run duration per (re-)tune, at the maximum clock.", "", nil),
	}
}

func (m *Metrics) governed(seconds float64) {
	if m == nil {
		return
	}
	if m.GovernedRuns != nil {
		m.GovernedRuns.Inc()
	}
	if m.RunSeconds != nil {
		m.RunSeconds.Observe(seconds)
	}
}

func (m *Metrics) tuned(seconds float64) {
	if m == nil {
		return
	}
	if m.TuneSeconds != nil {
		m.TuneSeconds.Observe(seconds)
	}
}

func (m *Metrics) shifts(n int) {
	if m == nil || m.PhaseShifts == nil || n <= 0 {
		return
	}
	m.PhaseShifts.Add(uint64(n))
}

func (m *Metrics) drifted() {
	if m == nil || m.DriftedRuns == nil {
		return
	}
	m.DriftedRuns.Inc()
}

func (m *Metrics) retuned() {
	if m == nil || m.Retunes == nil {
		return
	}
	m.Retunes.Inc()
}
