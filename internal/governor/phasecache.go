package governor

import (
	"math"
	"strconv"

	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
)

// This file is the governor's zero-reprofile fast path. The paper's whole
// economy is that profiling is the expensive part of frequency selection;
// a stream that returns to a phase the governor has already tuned should
// not pay for it twice. The phase cache memoizes each tuned phase under a
// quantized fingerprint of its mean features, so a detector- or
// drift-triggered retune first tries a re-pin: on a hit the cached
// selection is applied immediately — no profiling run, no sweep, no
// allocation — and only a genuinely new (or stale) phase falls through to
// the full online phase.
//
// Nothing in this file may touch a profiling symbol (profileAtMax,
// tuneFrom, collectors, sweepers) — the import-boundary test
// TestRePinPathNoProfilingSymbols walks this file's AST to enforce it.

// phaseEntry is one memoized phase: the selection its tune produced, the
// profiling baseline that justified it (re-installed as the drift baseline
// on re-pin), and the entry's confidence bookkeeping.
type phaseEntry struct {
	key      string         // full fingerprint: proves a hash match is a true hit
	fp, dram float64        // representative mean features the key was cut from
	sel      core.Selection // what a re-pin applies
	baseline dcgm.Sample    // profiling mean behind sel — drift baseline on re-pin
	obs      int            // executions attributed to this phase (tune + re-pins)
	noise    float64        // EWMA per-sample feature variance observed in the phase
	lastPin  int            // governed-run clock at the last (re-)pin — staleness clock
}

// phaseVerdict classifies one cache lookup.
type phaseVerdict int

const (
	phaseMiss  phaseVerdict = iota // no entry for the fingerprint
	phaseHit                       // fresh entry: re-pin without re-profiling
	phaseStale                     // entry exists but its confidence decayed: re-profile
)

// phaseCache is the bounded per-governor memo of tuned phases, keyed by
// the core.KeyHash of the quantized fingerprint. The governor is
// single-threaded, so the cache takes no locks; the fingerprint scratch
// buffer is grow-only, so steady-state lookups allocate nothing.
type phaseCache struct {
	quantum float64
	size    int
	stale   int // re-pin confidence bound in governed runs; 0 = never decays

	entries map[uint64]*phaseEntry
	order   []*phaseEntry // order[0] = most recently pinned; back evicts first
	buf     []byte        // grow-only fingerprint scratch

	hits, misses, evictions, staleHits int
}

func newPhaseCache(size int, quantum float64, stale int) *phaseCache {
	return &phaseCache{
		quantum: quantum,
		size:    size,
		stale:   stale,
		entries: make(map[uint64]*phaseEntry, size),
		order:   make([]*phaseEntry, 0, size),
		buf:     make([]byte, 0, 32),
	}
}

// fingerprint renders a phase's mean-normalized feature pair into its
// quantized signature — base-36 bucket indices under the plan-key
// quantizer discipline (core.Quantize), so equal-within-quantum phases
// alias and phases more than a quantum apart in either feature provably
// don't. The returned slice is the cache's scratch buffer, valid until the
// next fingerprint call.
func (pc *phaseCache) fingerprint(fp, dram float64) []byte {
	return pc.bucketKey(core.Quantize(fp, pc.quantum), core.Quantize(dram, pc.quantum))
}

// bucketKey renders a bucket-index pair into the scratch buffer.
func (pc *phaseCache) bucketKey(bf, bd int64) []byte {
	b := pc.buf[:0]
	b = strconv.AppendInt(b, bf, 36)
	b = append(b, ',')
	b = strconv.AppendInt(b, bd, 36)
	pc.buf = b
	return b
}

// addClamped is overflow-safe bucket-index addition: a sentinel bucket at
// either int64 extreme stays where it is instead of wrapping.
func addClamped(b, d int64) int64 {
	if d > 0 && b > math.MaxInt64-d {
		return b
	}
	if d < 0 && b < math.MinInt64-d {
		return b
	}
	return b + d
}

// bucketOffsets orders the neighborhood probe center-first, so an exact
// bucket match always wins over a boundary neighbor.
var bucketOffsets = [3]int64{0, -1, 1}

// lookup classifies the observed phase against the cache. The query's
// bucket and its ±1 neighborhood are probed, center first: a phase whose
// mean sits near a bucket boundary wobbles across it between visits (and a
// profiling mean at the max clock sits a hair off the governed-telemetry
// mean — §4.2's invariance is approximate), and an exact-bucket-only match
// would re-profile a phase the governor demonstrably knows. Phases more
// than two quanta apart in either feature provably never match; a phase
// pair inside that band that aliases re-pins a selection tuned for a
// near-identical feature point, and the drift loop re-profiles if the pin
// proves wrong — the cache is self-correcting, never load-bearing for
// correctness. A core.KeyHash collision between distinct fingerprints is
// resolved by comparing the stored key bytes — a colliding entry is a
// miss, never a false re-pin. now is the governor's run clock for the
// staleness check. Zero-alloc on every path; the scratch buffer is left
// holding the query's own (center) fingerprint.
func (pc *phaseCache) lookup(fp, dram float64, now int) (*phaseEntry, phaseVerdict) {
	bf := core.Quantize(fp, pc.quantum)
	bd := core.Quantize(dram, pc.quantum)
	var found *phaseEntry
probe:
	for _, df := range bucketOffsets {
		for _, dd := range bucketOffsets {
			key := pc.bucketKey(addClamped(bf, df), addClamped(bd, dd))
			e, ok := pc.entries[core.KeyHash(key)]
			if ok && e.key == string(key) {
				found = e
				break probe
			}
		}
	}
	pc.bucketKey(bf, bd) // leave the canonical query fingerprint in buf
	if found == nil {
		pc.misses++
		return nil, phaseMiss
	}
	if pc.stale > 0 && now-found.lastPin > pc.stale {
		pc.staleHits++
		return found, phaseStale
	}
	pc.hits++
	return found, phaseHit
}

// touch records a (re-)pin of e: bumps its observation count, resets its
// staleness clock, and moves it to the front of the eviction order.
func (pc *phaseCache) touch(e *phaseEntry, now int) {
	e.obs++
	e.lastPin = now
	for i, o := range pc.order {
		if o == e {
			copy(pc.order[1:i+1], pc.order[:i])
			pc.order[0] = e
			break
		}
	}
}

// put memoizes a freshly tuned phase under key/hash. An existing entry for
// the hash is replaced in place (a hash-colliding alias or a stale entry
// being refreshed); otherwise the least-recently-pinned entry is evicted
// once the cache is full.
func (pc *phaseCache) put(key string, hash uint64, fp, dram float64, sel core.Selection, baseline dcgm.Sample, noise float64, now int) (evicted bool) {
	if e, ok := pc.entries[hash]; ok {
		if e.key != key {
			evicted = true
			pc.evictions++
		}
		e.key, e.fp, e.dram = key, fp, dram
		e.sel, e.baseline, e.noise = sel, baseline, noise
		e.obs, e.lastPin = 1, now
		pc.touch(e, now)
		e.obs = 1 // touch counted the insert itself
		return evicted
	}
	if len(pc.order) >= pc.size {
		back := pc.order[len(pc.order)-1]
		pc.order = pc.order[:len(pc.order)-1]
		delete(pc.entries, core.KeyHash([]byte(back.key)))
		pc.evictions++
		evicted = true
	}
	e := &phaseEntry{key: key, fp: fp, dram: dram, sel: sel, baseline: baseline, obs: 1, noise: noise, lastPin: now}
	pc.entries[hash] = e
	pc.order = append(pc.order, nil)
	copy(pc.order[1:], pc.order)
	pc.order[0] = e
	return evicted
}

// updateNoise folds one run's observed feature variance into an entry's
// noise estimate as an equal-weight EWMA.
func updateNoise(old, observed float64) float64 {
	if old == 0 {
		return observed
	}
	return 0.5*old + 0.5*observed
}

// pinEntry applies a memoized phase: pin its selection and install its
// profiling baseline as the drift baseline — the state a full tune would
// have left, minus the profiling run.
func (g *Governor) pinEntry(e *phaseEntry) error {
	if err := g.pin(e.sel); err != nil {
		return err
	}
	g.phases.touch(e, g.stats.Runs)
	e.noise = updateNoise(e.noise, g.runVariance())
	g.selection = e.sel
	g.baseline = e.baseline
	g.tuned = true
	g.drifted = 0
	return nil
}

// rePin is the retune fast path the streaming loop tries before scheduling
// a re-profile: fingerprint the triggering telemetry, and on a fresh cache
// hit re-pin the memoized selection immediately — the retune completes at
// the end of the current run, with no profiling run consumed. A miss (or a
// stale entry) stashes the observed phase identity so the tune that
// follows populates the cache under it, and reports false so the caller
// schedules the usual re-profile.
func (g *Governor) rePin(rep *RunReport) (bool, error) {
	if g.phases == nil {
		return false, nil
	}
	fp, dram := g.triggerFeatures()
	e, verdict := g.phases.lookup(fp, dram, g.stats.Runs)
	if verdict != phaseHit {
		// Only the miss path materializes the fingerprint as a string.
		g.pendingKey = string(g.phases.buf)
		g.pendingHash = core.KeyHash(g.phases.buf)
		g.pendingFP, g.pendingDR = fp, dram
		g.havePending = true
		if verdict == phaseStale {
			g.cfg.Metrics.phaseStale()
		} else {
			g.cfg.Metrics.phaseMiss()
		}
		return false, nil
	}
	if err := g.pinEntry(e); err != nil {
		return false, err
	}
	if g.det != nil {
		g.det.Reset() // stale pre-pin samples must not re-flag this shift
	}
	g.sinceTune = 0
	g.retune = false
	rep.Retunes++
	rep.RePins++
	g.stats.Retunes++
	g.stats.RePins++
	g.commitTriggers(rep)
	g.cfg.Metrics.phaseHit()
	g.cfg.Metrics.rePinned()
	g.cfg.Metrics.retuned() // a re-pin IS a retune, just a free one
	return true, nil
}

// TryRePin attempts the zero-reprofile fast path directly: if the phase
// whose mean features are (fp, dram) is memoized and fresh, its selection
// is pinned and installed (with the cached drift baseline) and returned.
// Callers running their own control loop use this to re-pin a recognized
// phase without paying for a profiling run; the streaming loop's retune
// path goes through the same machinery. ok=false when the phase cache is
// disabled, the phase is unknown, or its confidence has decayed.
func (g *Governor) TryRePin(fp, dram float64) (sel core.Selection, ok bool, err error) {
	if g.phases == nil {
		return core.Selection{}, false, nil
	}
	e, verdict := g.phases.lookup(fp, dram, g.stats.Runs)
	if verdict != phaseHit {
		return core.Selection{}, false, nil
	}
	if err := g.pinEntry(e); err != nil {
		return core.Selection{}, false, err
	}
	return e.sel, true, nil
}

// memoize records a completed tune in the phase cache. A tune that was
// demanded by a trigger is stored under the phase identity observed at
// trigger time (governed telemetry); the initial tune, which has no
// trigger, is stored under its own profiling mean — the two coincide
// within a quantum because the features are DVFS-invariant.
func (g *Governor) memoize(noise float64) {
	if g.phases == nil {
		return
	}
	var (
		key      string
		hash     uint64
		fp, dram float64
	)
	if g.havePending {
		key, hash = g.pendingKey, g.pendingHash
		fp, dram = g.pendingFP, g.pendingDR
		g.pendingKey, g.havePending = "", false
	} else {
		fp, dram = g.baseline.FPActive(), g.baseline.DRAMActive
		b := g.phases.fingerprint(fp, dram)
		key, hash = string(b), core.KeyHash(b)
	}
	if g.phases.put(key, hash, fp, dram, g.selection, g.baseline, noise, g.stats.Runs) {
		g.cfg.Metrics.phaseEvicted()
	}
}

// commitTriggers folds the retune's trigger sources into the per-source
// ledgers. Drift and a detector shift can demand the same retune in one
// step; each source is counted independently, so the per-source counters
// match detector and hysteresis ground truth even when one tune consumes
// both.
func (g *Governor) commitTriggers(rep *RunReport) {
	if g.pendingDrift {
		rep.DriftRetunes++
		g.stats.DriftRetunes++
		g.cfg.Metrics.driftRetuned()
	}
	if g.pendingShift {
		rep.ShiftRetunes++
		g.stats.ShiftRetunes++
		g.cfg.Metrics.shiftRetuned()
	}
	g.pendingDrift, g.pendingShift = false, false
}

// triggerFeatures is the mean-normalized feature pair a retune trigger
// fingerprints. A shift-triggered retune uses the detector's newer
// half-window — pure post-shift telemetry — because the whole-run mean
// smears the outgoing and incoming phases together; a drift-only trigger
// (no shift, so the run is homogeneous) uses the run mean.
func (g *Governor) triggerFeatures() (fp, dram float64) {
	if g.pendingShift && g.det != nil {
		if fp, dram, ok := g.det.RecentMeans(); ok {
			return fp, dram
		}
	}
	if g.obsCount == 0 {
		return g.baseline.FPActive(), g.baseline.DRAMActive
	}
	n := float64(g.obsCount)
	return g.obsSumFP / n, g.obsSumDR / n
}

// runVariance is the mean per-sample feature variance of the current
// governed run, from the stream-state accumulators — the signal-confidence
// input to phase noise estimates and adaptive fusion.
func (g *Governor) runVariance() float64 {
	if g.obsCount == 0 {
		return 0
	}
	n := float64(g.obsCount)
	mf, md := g.obsSumFP/n, g.obsSumDR/n
	v := (g.obsSqFP/n - mf*mf + g.obsSqDR/n - md*md) / 2
	if v < 0 {
		return 0
	}
	return v
}

// PhaseCacheStats is a snapshot of the phase-memoization counters.
type PhaseCacheStats struct {
	Phases    int // memoized phases currently held
	Hits      int // lookups that re-pinned without a re-profile
	Misses    int // lookups that fell through to a full tune
	StaleHits int // lookups whose entry's confidence had decayed
	Evictions int // entries displaced by the size bound or a hash alias
}

// PhaseCache returns a snapshot of the phase cache's counters; all zeros
// when memoization is disabled.
func (g *Governor) PhaseCache() PhaseCacheStats {
	if g.phases == nil {
		return PhaseCacheStats{}
	}
	return PhaseCacheStats{
		Phases:    len(g.phases.order),
		Hits:      g.phases.hits,
		Misses:    g.phases.misses,
		StaleHits: g.phases.staleHits,
		Evictions: g.phases.evictions,
	}
}

// Phases returns the representative mean features of every memoized phase,
// most recently pinned first — the exact points whose fingerprints the
// cache is keyed by, so feeding one back to TryRePin is a guaranteed
// bucket match.
func (g *Governor) Phases() [][2]float64 {
	if g.phases == nil {
		return nil
	}
	out := make([][2]float64, len(g.phases.order))
	for i, e := range g.phases.order {
		out[i] = [2]float64{e.fp, e.dram}
	}
	return out
}

// BaselineFeatures returns the mean (fp_active, dram_active) of the
// profiling baseline behind the current selection.
func (g *Governor) BaselineFeatures() (fp, dram float64) {
	return g.baseline.FPActive(), g.baseline.DRAMActive
}
