package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/nn"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/stats"
	"gpudvfs/internal/workloads"
)

// serveModels builds paper-shaped models with random (untrained) weights —
// bit-identity of the serving path does not depend on training, and this
// keeps the test fast.
func serveModels(t *testing.T) *Models {
	t.Helper()
	m, err := serveModelsErr()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// serveModelsErr is serveModels without the testing.T, for fuzz seed phases.
func serveModelsErr() (*Models, error) {
	arch := sim.GA100().Spec()
	power, err := nn.NewNetwork(nn.PaperArch(3), 1)
	if err != nil {
		return nil, err
	}
	tmodel, err := nn.NewNetwork(nn.PaperArch(3), 2)
	if err != nil {
		return nil, err
	}
	return &Models{
		Features:   []string{"fp_active", "dram_active", "sm_app_clock"},
		Scaler:     &stats.StandardScaler{Means: []float64{0.4, 0.3, 0.7}, Stds: []float64{0.2, 0.15, 0.25}},
		Power:      power,
		Time:       tmodel,
		TrainedOn:  arch.Name,
		TDPWatts:   arch.TDPWatts,
		MaxFreqMHz: arch.MaxFreqMHz,
	}, nil
}

func serveRun(t *testing.T, seed int64, w sim.KernelProfile) dcgm.Run {
	t.Helper()
	coll := dcgm.NewCollector(sim.New(sim.GA100(), 3), dcgm.Config{Seed: seed})
	run, err := coll.ProfileAtMax(w)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// oracleProfile is the seed's build-everything-per-call PredictProfile
// formulation, kept verbatim as the reference the pooled sweeper must match
// bitwise.
func oracleProfile(t *testing.T, m *Models, target backend.Arch, maxRun dcgm.Run, freqs []float64) []objective.Profile {
	t.Helper()
	mean := maxRun.MeanSample()
	rows := make([][]float64, len(freqs))
	for i, f := range freqs {
		row, err := dataset.FeatureVector(m.Features, mean, f, target.MaxFreqMHz)
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = row
	}
	if m.Scaler != nil {
		scaled, err := m.Scaler.Transform(rows)
		if err != nil {
			t.Fatal(err)
		}
		rows = scaled
	}
	pPred, err := m.Power.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	tPred, err := m.Time.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]objective.Profile, len(freqs))
	for i, f := range freqs {
		power := pPred[i][0] * target.TDPWatts
		slow := tPred[i][0]
		if power < 1 {
			power = 1
		}
		if slow < 1e-6 {
			slow = 1e-6
		}
		out[i] = objective.Profile{
			FreqMHz:    f,
			PowerWatts: power,
			TimeSec:    maxRun.ExecTimeSec * slow,
		}
	}
	return out
}

func profilesIdentical(a, b []objective.Profile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].FreqMHz) != math.Float64bits(b[i].FreqMHz) ||
			math.Float64bits(a[i].PowerWatts) != math.Float64bits(b[i].PowerWatts) ||
			math.Float64bits(a[i].TimeSec) != math.Float64bits(b[i].TimeSec) {
			return false
		}
	}
	return true
}

func TestSweeperMatchesPredictProfile(t *testing.T) {
	m := serveModels(t)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	sw, err := m.NewSweeper(arch, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []sim.KernelProfile{workloads.DGEMM(), workloads.STREAM(), workloads.LAMMPS()} {
		run := serveRun(t, int64(40+i), w)
		want := oracleProfile(t, m, arch, run, freqs)

		got, _, err := sw.PredictProfile(run)
		if err != nil {
			t.Fatal(err)
		}
		if !profilesIdentical(got, want) {
			t.Fatalf("%s: sweeper diverges from the per-call oracle", w.Name)
		}
		// The public entry point must agree too (it routes through the
		// memoized sweeper).
		viaModels, err := m.PredictProfile(arch, run, freqs)
		if err != nil {
			t.Fatal(err)
		}
		if !profilesIdentical(viaModels, want) {
			t.Fatalf("%s: Models.PredictProfile diverges from the oracle", w.Name)
		}
	}
}

func TestSweeperConcurrentDeterministic(t *testing.T) {
	m := serveModels(t)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	sw, err := m.NewSweeper(arch, freqs)
	if err != nil {
		t.Fatal(err)
	}
	runs := []dcgm.Run{
		serveRun(t, 50, workloads.DGEMM()),
		serveRun(t, 51, workloads.STREAM()),
	}
	want := make([][]objective.Profile, len(runs))
	for i, r := range runs {
		want[i], _, err = sw.PredictProfile(r)
		if err != nil {
			t.Fatal(err)
		}
	}

	const goroutines, iters = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]objective.Profile, len(freqs))
			for it := 0; it < iters; it++ {
				ri := (g + it) % len(runs)
				if _, err := sw.PredictProfileInto(dst, runs[ri]); err != nil {
					errs <- err
					return
				}
				if !profilesIdentical(dst, want[ri]) {
					errs <- fmt.Errorf("goroutine %d iter %d: output diverged", g, it)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// zeroWeights flattens a network to the all-zero function, which predicts
// 0 TDP-fraction power and 0 slowdown — both below the safety floors.
func zeroWeights(net *nn.Network) {
	for _, l := range net.Layers {
		for i := range l.W.Data {
			l.W.Data[i] = 0
		}
		for i := range l.B {
			l.B[i] = 0
		}
	}
}

func TestClampCountSurfaced(t *testing.T) {
	m := serveModels(t)
	zeroWeights(m.Power)
	zeroWeights(m.Time)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	sw, err := m.NewSweeper(arch, freqs)
	if err != nil {
		t.Fatal(err)
	}
	run := serveRun(t, 60, workloads.DGEMM())
	profiles, clamped, err := sw.PredictProfile(run)
	if err != nil {
		t.Fatal(err)
	}
	// Every frequency clamps both power and slowdown; a 1-D sweep charges
	// every clamp to the core axis.
	if want := 2 * len(freqs); clamped.Total() != want || clamped.Core != want || clamped.Mem != 0 {
		t.Fatalf("clamped = %+v, want Core=%d Mem=0", clamped, want)
	}
	for _, p := range profiles {
		if p.PowerWatts != 1 || p.TimeSec != run.ExecTimeSec*1e-6 {
			t.Fatalf("floors not applied: %+v", p)
		}
	}

	// And the counter reaches OnlineResult through the online pipeline.
	dev := sim.New(sim.GA100(), 61)
	res, err := OnlinePredict(dev, m, workloads.DGEMM(), dcgm.Config{Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(arch.DesignClocks()); res.Clamped != want || res.ClampedCore != want || res.ClampedMem != 0 {
		t.Fatalf("OnlineResult clamps = %d (core %d, mem %d), want total=core=%d mem=0",
			res.Clamped, res.ClampedCore, res.ClampedMem, want)
	}

	// A healthy (random-weight) model pair rarely clamps everything; just
	// assert the count stays within its bound.
	m2 := serveModels(t)
	sw2, err := m2.NewSweeper(arch, freqs)
	if err != nil {
		t.Fatal(err)
	}
	_, clamped2, err := sw2.PredictProfile(run)
	if err != nil {
		t.Fatal(err)
	}
	if clamped2.Total() < 0 || clamped2.Total() > 2*len(freqs) || clamped2.Mem != 0 {
		t.Fatalf("clamp count %+v out of range", clamped2)
	}
}

func planCacheFor(t *testing.T, m *Models, cfg PlanCacheConfig) *PlanCache {
	t.Helper()
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPlanCache(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func selectionsIdentical(a, b Selection) bool {
	return a.Objective == b.Objective &&
		math.Float64bits(a.FreqMHz) == math.Float64bits(b.FreqMHz) &&
		math.Float64bits(a.EnergyPct) == math.Float64bits(b.EnergyPct) &&
		math.Float64bits(a.TimePct) == math.Float64bits(b.TimePct)
}

func TestPlanCacheHitReturnsIdenticalSelection(t *testing.T) {
	m := serveModels(t)
	pc := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1})
	run := serveRun(t, 70, workloads.DGEMM())

	first, hit, err := pc.Select(run)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Select reported a hit")
	}
	second, hit, err := pc.Select(run)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("repeat Select missed")
	}
	if !selectionsIdentical(first, second) {
		t.Fatalf("cached selection diverged: %+v vs %+v", first, second)
	}
	if s := pc.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if c, ok := pc.Clamped(run); !ok || c.Total() < 0 {
		t.Fatalf("Clamped = %+v, %v", c, ok)
	}
}

// syntheticRun builds a max-clock profiling run whose mean features are
// exactly the given activities.
func syntheticRun(fp, dram float64) dcgm.Run {
	return dcgm.Run{
		FreqMHz:     1410,
		ExecTimeSec: 1,
		Samples: []dcgm.Sample{{
			FP32Active:    fp,
			DRAMActive:    dram,
			SMAppClockMHz: 1410,
		}},
	}
}

func TestPlanCacheQuantizationNeverAliasesBeyondTolerance(t *testing.T) {
	m := serveModels(t)
	const quantum = 0.1
	pc := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Quantum: quantum})

	base := syntheticRun(0.42, 0.30)
	baseKey, err := pc.keyFor(base.MeanSample())
	if err != nil {
		t.Fatal(err)
	}
	// Nearby workloads (within one bucket) share the entry…
	near := syntheticRun(0.42+quantum/4, 0.30)
	nearKey, err := pc.keyFor(near.MeanSample())
	if err != nil {
		t.Fatal(err)
	}
	if nearKey != baseKey {
		t.Fatalf("within-bucket workloads got distinct keys:\n%q\n%q", baseKey, nearKey)
	}
	// …but anything differing by more than the tolerance in any dimension
	// never aliases.
	for _, d := range []struct{ fp, dram float64 }{
		{quantum * 1.01, 0},
		{0, quantum * 1.01},
		{-quantum * 1.5, 0},
		{quantum * 3, quantum * 3},
	} {
		far := syntheticRun(0.42+d.fp, 0.30+d.dram)
		k, err := pc.keyFor(far.MeanSample())
		if err != nil {
			t.Fatal(err)
		}
		if k == baseKey {
			t.Fatalf("workloads differing by (%v,%v) > tolerance aliased to one key", d.fp, d.dram)
		}
	}
}

func TestPlanCacheEviction(t *testing.T) {
	m := serveModels(t)
	// One shard pins the original exact global-LRU eviction order; with
	// several stripes the bound becomes per-shard (see the sharded tests).
	pc := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Quantum: 0.1, Capacity: 2, Shards: 1})
	runs := []dcgm.Run{
		syntheticRun(0.15, 0.20),
		syntheticRun(0.45, 0.20),
		syntheticRun(0.75, 0.20),
	}
	for _, r := range runs {
		if _, _, err := pc.Select(r); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pc.Len())
	}
	s := pc.Stats()
	if s.Evictions != 1 || s.Misses != 3 {
		t.Fatalf("stats %+v", s)
	}
	// The oldest bucket was evicted; re-querying it misses again.
	if _, hit, err := pc.Select(runs[0]); err != nil || hit {
		t.Fatalf("evicted bucket still hit (err %v)", err)
	}
	// The most recent one still hits.
	if _, hit, err := pc.Select(runs[2]); err != nil || !hit {
		t.Fatalf("recent bucket missed (err %v)", err)
	}
}

func TestPlanCacheSingleflight(t *testing.T) {
	m := serveModels(t)
	pc := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1})
	run := serveRun(t, 71, workloads.STREAM())

	const goroutines = 8
	sels := make([]Selection, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sels[g], _, errs[g] = pc.Select(run)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !selectionsIdentical(sels[g], sels[0]) {
			t.Fatalf("goroutine %d selection diverged", g)
		}
	}
	// Singleflight: all concurrent callers shared one computation/bucket.
	if s := pc.Stats(); s.Misses != 1 {
		t.Fatalf("stats %+v, want exactly 1 miss", s)
	}
}

// TestBatchSweepMatchesSingle is the fused-batch differential: stacking B
// runs into one forward pass must reproduce the per-run sweep bit for bit
// at every batch size the serving layer can produce.
func TestBatchSweepMatchesSingle(t *testing.T) {
	m := serveModels(t)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	sw, err := m.NewSweeper(arch, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 64} {
		runs := make([]dcgm.Run, batch)
		want := make([][]objective.Profile, batch)
		wantClamped := make([]Clamps, batch)
		for i := range runs {
			runs[i] = syntheticRun(0.05+0.013*float64(i%60), 0.10+0.011*float64(i%70))
			want[i] = make([]objective.Profile, len(freqs))
			wantClamped[i], err = sw.PredictProfileInto(want[i], runs[i])
			if err != nil {
				t.Fatal(err)
			}
		}
		dsts := make([][]objective.Profile, batch)
		for i := range dsts {
			dsts[i] = make([]objective.Profile, len(freqs))
		}
		clamped := make([]Clamps, batch)
		if err := sw.PredictProfilesInto(dsts, clamped, runs); err != nil {
			t.Fatal(err)
		}
		for i := range runs {
			if !profilesIdentical(dsts[i], want[i]) {
				t.Fatalf("batch %d: run %d diverged from the per-run sweep", batch, i)
			}
			if clamped[i] != wantClamped[i] {
				t.Fatalf("batch %d: run %d clamp count %+v, want %+v", batch, i, clamped[i], wantClamped[i])
			}
		}
	}
}

func TestBatchSweepValidation(t *testing.T) {
	m := serveModels(t)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	sw, err := m.NewSweeper(arch, freqs)
	if err != nil {
		t.Fatal(err)
	}
	good := syntheticRun(0.4, 0.3)
	dst := [][]objective.Profile{make([]objective.Profile, len(freqs))}
	// Mismatched slice lengths.
	if err := sw.PredictProfilesInto(dst, make([]Clamps, 2), []dcgm.Run{good}); err == nil {
		t.Fatal("mismatched clamp slots accepted")
	}
	// Invalid run (wrong clock) is named by index.
	bad := good
	bad.FreqMHz = 500
	if err := sw.PredictProfilesInto(dst, make([]Clamps, 1), []dcgm.Run{bad}); err == nil {
		t.Fatal("off-max profiling run accepted")
	}
	// Short profile buffer.
	short := [][]objective.Profile{make([]objective.Profile, 3)}
	if err := sw.PredictProfilesInto(short, make([]Clamps, 1), []dcgm.Run{good}); err == nil {
		t.Fatal("short profile buffer accepted")
	}
	// Empty batch is a no-op.
	if err := sw.PredictProfilesInto(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := sw.ValidateRun(bad); err == nil {
		t.Fatal("ValidateRun accepted an off-max run")
	}
}

// TestPlanCacheShardedDifferential: for the same request stream, every
// shard count must produce byte-identical selections (shards only change
// who contends on which mutex, never what is computed).
func TestPlanCacheShardedDifferential(t *testing.T) {
	m := serveModels(t)
	runs := make([]dcgm.Run, 40)
	for i := range runs {
		runs[i] = syntheticRun(0.05+0.17*float64(i%20), 0.10+0.19*float64(i/20))
	}
	var want []Selection
	for _, shards := range []int{1, 16} {
		pc := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Shards: shards})
		if got := pc.Shards(); got != shards {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
		sels := make([]Selection, len(runs))
		for i, r := range runs {
			var err error
			sels[i], _, err = pc.Select(r)
			if err != nil {
				t.Fatal(err)
			}
		}
		if want == nil {
			want = sels
			continue
		}
		for i := range sels {
			if !selectionsIdentical(sels[i], want[i]) {
				t.Fatalf("shard count %d: selection %d diverged from the 1-shard cache", shards, i)
			}
		}
		// Aggregate and per-shard counters agree.
		agg := pc.Stats()
		var sum PlanCacheStats
		for _, s := range pc.ShardStats() {
			sum.Hits += s.Hits
			sum.Misses += s.Misses
			sum.Evictions += s.Evictions
		}
		if agg != sum {
			t.Fatalf("aggregate stats %+v != shard sum %+v", agg, sum)
		}
		if agg.Misses != uint64(len(runs)) {
			t.Fatalf("stats %+v, want %d misses", agg, len(runs))
		}
	}
}

// TestPlanCacheShardRounding: shard counts round up to powers of two and
// invalid values are rejected.
func TestPlanCacheShardRounding(t *testing.T) {
	m := serveModels(t)
	pc := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Shards: 5})
	if got := pc.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8 (5 rounded up)", got)
	}
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}, Shards: -2}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}, Shards: 1 << 20}); err == nil {
		t.Fatal("absurd shard count accepted")
	}
}

// TestPlanCacheConcurrentStatsNoTornReads hammers Select from many
// goroutines while a reader polls Stats/ShardStats/Len continuously; under
// -race this asserts the lock-free counters never produce a torn read, and
// the final counts must balance exactly.
func TestPlanCacheConcurrentStatsNoTornReads(t *testing.T) {
	m := serveModels(t)
	pc := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Shards: 16})
	runs := make([]dcgm.Run, 8)
	for i := range runs {
		runs[i] = syntheticRun(0.05+0.17*float64(i), 0.3)
	}

	const goroutines, iters = 8, 30
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := pc.Stats()
			// Monotone totals: a snapshot can never see more hits+misses
			// than requests issued overall.
			if s.Hits+s.Misses > goroutines*iters {
				panic(fmt.Sprintf("impossible snapshot %+v", s))
			}
			pc.ShardStats()
			pc.Len()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if _, _, err := pc.Select(runs[(g+it)%len(runs)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := pc.Stats()
	if s.Hits+s.Misses != goroutines*iters {
		t.Fatalf("stats %+v, want hits+misses = %d", s, goroutines*iters)
	}
	if s.Misses != uint64(len(runs)) {
		t.Fatalf("stats %+v, want %d misses (singleflight per bucket)", s, len(runs))
	}
}

func TestPlanCacheConfigValidation(t *testing.T) {
	m := serveModels(t)
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlanCache(nil, PlanCacheConfig{Objective: objective.EDP{}}); err == nil {
		t.Fatal("nil sweeper accepted")
	}
	if _, err := NewPlanCache(sw, PlanCacheConfig{}); err == nil {
		t.Fatal("missing objective accepted")
	}
	if _, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}, Quantum: -1}); err == nil {
		t.Fatal("negative quantum accepted")
	}
	if _, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}, Capacity: -3}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

// FuzzPlanKeyQuantizer checks the cache key quantizer's two contracts over
// arbitrary feature values: values separated by more than one quantum never
// share a bucket, and a ±1 ulp perturbation moves the bucket index by at
// most one (it can only change at all when the value sits on a bucket
// boundary).
func FuzzPlanKeyQuantizer(f *testing.F) {
	f.Add(0.0, 0.1)
	f.Add(0.42, 0.73)
	f.Add(-0.30000000001, 0.29999999999)
	f.Add(0.1, 0.2)
	f.Add(1e-12, -1e-12)
	f.Fuzz(func(t *testing.T, v, w float64) {
		const q = 0.1
		if math.IsNaN(v) || math.IsNaN(w) {
			t.Skip()
		}
		// Realistic feature magnitudes: activities, clock fractions, scaled
		// PCIe rates. Beyond this, float spacing exceeds the bucket width and
		// the quantizer's sentinel clamps take over.
		if math.Abs(v) > 1e6 || math.Abs(w) > 1e6 {
			t.Skip()
		}
		a, b := v, w
		if a > b {
			a, b = b, a
		}
		ba, bb := quantizeFeature(a, q), quantizeFeature(b, q)
		if ba > bb {
			t.Fatalf("quantizer not monotone: q(%v)=%d > q(%v)=%d", a, ba, b, bb)
		}
		if b-a > q*(1+1e-8) && ba == bb {
			t.Fatalf("values %v and %v differ by more than the quantum but share bucket %d", a, b, ba)
		}
		bv := quantizeFeature(v, q)
		up := quantizeFeature(math.Nextafter(v, math.Inf(1)), q)
		if up != bv && up != bv+1 {
			t.Fatalf("+1 ulp moved bucket from %d to %d", bv, up)
		}
		down := quantizeFeature(math.Nextafter(v, math.Inf(-1)), q)
		if down != bv && down != bv-1 {
			t.Fatalf("-1 ulp moved bucket from %d to %d", bv, down)
		}

		// The (core, mem)-extended key concatenates per-feature buckets, so
		// the no-alias property must survive composition: treating v as a
		// core-scaled column and w as the mem-scaled column, two grid points
		// whose values differ by more than the quantum on EITHER axis must
		// produce distinct (coreBucket, memBucket) pairs.
		if math.Abs(v-w) > q*(1+1e-8) {
			cv, cw := quantizeFeature(v, q), quantizeFeature(w, q)
			if cv == cw {
				t.Fatalf("core/mem values %v and %v differ by more than the quantum but compose to the same bucket pair (%d,%d)", v, w, cv, cw)
			}
		}
	})
}

// planKeyDigits strips a cache's shared prefix off a key and parses the
// remaining quantized feature digits (base 36, comma-terminated).
func planKeyDigits(t *testing.T, c *PlanCache, key string) []int64 {
	t.Helper()
	if !strings.HasPrefix(key, c.prefix) {
		t.Fatalf("key %q lacks the cache prefix %q", key, c.prefix)
	}
	parts := strings.Split(strings.TrimSuffix(key[len(c.prefix):], ","), ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 36, 64)
		if err != nil {
			t.Fatalf("key digit %q does not parse: %v", p, err)
		}
		out[i] = n
	}
	return out
}

// FuzzPlanKeyGrid checks the quantizer contracts at the full plan-key level
// with the memory axis in the key: a grid cache never aliases a core-only
// cache for the same telemetry (the mem-clock list is part of the key
// identity), two different mem lists never alias each other, the feature
// digits are identical across all three (the mem axis lives in the prefix,
// not the per-workload digits), and a ±1 ulp telemetry perturbation moves
// each digit by at most one.
func FuzzPlanKeyGrid(f *testing.F) {
	m, err := serveModelsErr()
	if err != nil {
		f.Fatal(err)
	}
	arch := sim.GA100().Spec()
	mk := func(mems []float64) *PlanCache {
		sw, err := m.NewGridSweeper(arch, arch.DesignClocks(), mems)
		if err != nil {
			f.Fatal(err)
		}
		pc, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}})
		if err != nil {
			f.Fatal(err)
		}
		return pc
	}
	pc1d := mk(nil)
	pc2d := mk([]float64{1597, 1215, 810})
	pc2b := mk([]float64{1597, 1215})

	f.Add(0.4, 0.3, 1410.0)
	f.Add(0.0, 0.0, 510.0)
	f.Add(0.05, 0.99, 1005.0)
	f.Fuzz(func(t *testing.T, fp, dram, clk float64) {
		if math.IsNaN(fp) || math.IsNaN(dram) || math.IsNaN(clk) {
			t.Skip()
		}
		if math.Abs(fp) > 1e6 || math.Abs(dram) > 1e6 || math.Abs(clk) > 1e9 {
			t.Skip()
		}
		mean := dcgm.Sample{FP32Active: fp, DRAMActive: dram, SMAppClockMHz: clk}
		k1, err := pc1d.keyFor(mean)
		if err != nil {
			t.Skip() // non-finite feature vector; rejected upstream
		}
		k2, err := pc2d.keyFor(mean)
		if err != nil {
			t.Fatalf("grid key errored where core-only key did not: %v", err)
		}
		kb, err := pc2b.keyFor(mean)
		if err != nil {
			t.Fatal(err)
		}
		if k1 == k2 || k1 == kb || k2 == kb {
			t.Fatalf("keys alias across mem axes:\n1d: %q\n2d: %q\n2b: %q", k1, k2, kb)
		}
		d1 := planKeyDigits(t, pc1d, k1)
		d2 := planKeyDigits(t, pc2d, k2)
		db := planKeyDigits(t, pc2b, kb)
		if fmt.Sprint(d1) != fmt.Sprint(d2) || fmt.Sprint(d1) != fmt.Sprint(db) {
			t.Fatalf("feature digits differ across mem axes for identical telemetry: %v vs %v vs %v", d1, d2, db)
		}

		// ulp-stability with the mem axis in the key: a one-ulp nudge of any
		// telemetry field moves each quantized digit by at most one bucket.
		for _, nudged := range []dcgm.Sample{
			{FP32Active: math.Nextafter(fp, math.Inf(1)), DRAMActive: dram, SMAppClockMHz: clk},
			{FP32Active: fp, DRAMActive: math.Nextafter(dram, math.Inf(-1)), SMAppClockMHz: clk},
			{FP32Active: fp, DRAMActive: dram, SMAppClockMHz: math.Nextafter(clk, math.Inf(1))},
		} {
			kn, err := pc2d.keyFor(nudged)
			if err != nil {
				continue
			}
			dn := planKeyDigits(t, pc2d, kn)
			if len(dn) != len(d2) {
				t.Fatalf("digit count changed under 1 ulp: %v vs %v", d2, dn)
			}
			for i := range dn {
				if diff := dn[i] - d2[i]; diff < -1 || diff > 1 {
					t.Fatalf("digit %d moved %d buckets under a 1 ulp nudge (%v -> %v)", i, diff, d2, dn)
				}
			}
		}
	})
}
