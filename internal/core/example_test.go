package core_test

import (
	"fmt"
	"log"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/workloads"
)

// The paper's two-phase workflow end to end. (Compile-checked only — the
// offline phase trains two networks, which is too slow for an executed
// documentation example; run examples/quickstart for the live version.)
func Example() {
	arch := sim.GA100()

	// Offline: collect the benchmark suite across the DVFS space and
	// train the power and time models.
	offline, err := core.OfflineTrain(sim.New(arch, 42),
		backend.Workloads(workloads.TrainingSet()), dcgm.Config{Seed: 1}, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Online: one profiling run of an unseen application at the maximum
	// clock seeds predictions across all 61 configurations.
	online, err := core.OnlinePredict(sim.New(arch, 7),
		offline.Models, workloads.BERT(), dcgm.Config{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Select the ED²P-optimal frequency, unconstrained.
	sel, err := core.SelectFrequency(online.Predicted, objective.ED2P{}, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run BERT at %.0f MHz (predicted energy %+.1f%%, time %+.1f%%)\n",
		sel.FreqMHz, sel.EnergyPct, sel.TimePct)
}
