package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
)

// failSweep is a SweepFunc that fails the test if the miss path ever
// runs — the warm-start contract is that restored entries never invoke
// the sweeper.
func failSweep(t *testing.T) SweepFunc {
	return func(context.Context, []objective.Profile, dcgm.Run) (Clamps, error) {
		t.Error("sweeper invoked on a warm-started cache")
		return Clamps{}, errors.New("sweeper invoked on a warm-started cache")
	}
}

func snapshotRuns() []dcgm.Run {
	runs := make([]dcgm.Run, 12)
	for i := range runs {
		runs[i] = syntheticRun(0.05+0.15*float64(i%4), 0.1+0.2*float64(i/4))
	}
	return runs
}

// TestSnapshotWarmStartServesHitsWithoutSweeper is the restart scenario:
// a warm cache snapshots, a cold replacement loads the snapshot, and a
// replay of the previously-seen workload set is 100% hits with identical
// selections — the sweeper (wired to fail the test) is never touched.
func TestSnapshotWarmStartServesHitsWithoutSweeper(t *testing.T) {
	m := serveModels(t)
	cfg := PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Shards: 4}
	warm := planCacheFor(t, m, cfg)
	runs := snapshotRuns()
	want := make([]Selection, len(runs))
	for i, r := range runs {
		sel, _, err := warm.Select(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sel
	}

	var buf bytes.Buffer
	if err := warm.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	coldCfg := cfg
	coldCfg.Sweep = failSweep(t)
	cold := planCacheFor(t, m, coldCfg)
	n, err := cold.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(runs) {
		t.Fatalf("loaded %d entries, want %d", n, len(runs))
	}
	if cold.Len() != warm.Len() {
		t.Fatalf("warm-started Len = %d, want %d", cold.Len(), warm.Len())
	}
	for i, r := range runs {
		sel, hit, err := cold.Select(r)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("run %d missed on the warm-started cache", i)
		}
		if !selectionsIdentical(want[i], sel) {
			t.Fatalf("run %d selection diverged after warm start: %+v vs %+v", i, want[i], sel)
		}
	}
	if s := cold.Stats(); s.Misses != 0 {
		t.Fatalf("warm-started cache recorded %d misses", s.Misses)
	}
}

// TestSnapshotPreservesLRUOrder pins that recency survives the
// round-trip: the entry that was least recent before the snapshot is the
// one evicted first after it.
func TestSnapshotPreservesLRUOrder(t *testing.T) {
	m := serveModels(t)
	cfg := PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Capacity: 2, Shards: 1}
	warm := planCacheFor(t, m, cfg)
	oldRun := syntheticRun(0.15, 0.20)
	hotRun := syntheticRun(0.45, 0.20)
	for _, r := range []dcgm.Run{oldRun, hotRun, hotRun} {
		if _, _, err := warm.Select(r); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := warm.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cold := planCacheFor(t, m, cfg)
	if _, err := cold.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// A third bucket must evict oldRun (the LRU), not hotRun.
	if _, _, err := cold.Select(syntheticRun(0.75, 0.20)); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := cold.Select(hotRun); err != nil || !hit {
		t.Fatalf("hot entry was evicted after warm start (hit=%v, err=%v)", hit, err)
	}
	if _, hit, err := cold.Select(oldRun); err != nil || hit {
		t.Fatalf("LRU entry survived past capacity after warm start (hit=%v, err=%v)", hit, err)
	}
}

func TestSnapshotEmptyCacheRoundTrip(t *testing.T) {
	m := serveModels(t)
	cfg := PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1}
	var buf bytes.Buffer
	if err := planCacheFor(t, m, cfg).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cold := planCacheFor(t, m, cfg)
	n, err := cold.LoadSnapshot(&buf)
	if err != nil {
		t.Fatalf("empty snapshot refused: %v", err)
	}
	if n != 0 || cold.Len() != 0 {
		t.Fatalf("empty round-trip installed %d entries, Len %d", n, cold.Len())
	}
}

func TestSnapshotCorruptAndTruncatedRefused(t *testing.T) {
	m := serveModels(t)
	cfg := PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1}
	warm := planCacheFor(t, m, cfg)
	for _, r := range snapshotRuns() {
		if _, _, err := warm.Select(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := warm.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("not a snapshot at all")},
		{"empty file", nil},
		{"truncated half", full[:len(full)/2]},
		{"truncated tail", full[:len(full)-2]},
	}
	for _, tc := range cases {
		cold := planCacheFor(t, m, cfg)
		if _, err := cold.LoadSnapshot(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", tc.name)
		}
		if cold.Len() != 0 {
			t.Errorf("%s: corrupt snapshot installed %d entries", tc.name, cold.Len())
		}
	}

	// Count/entries disagreement (a truncation landing between complete
	// JSON values) is refused too.
	tampered := bytes.Replace(full, []byte(`"count":12`), []byte(`"count":13`), 1)
	if bytes.Equal(tampered, full) {
		t.Fatal("tamper target not found in snapshot bytes")
	}
	if _, err := planCacheFor(t, m, cfg).LoadSnapshot(bytes.NewReader(tampered)); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("count mismatch not refused as truncation: %v", err)
	}
}

// TestSnapshotConfigChangeRefused pins the refusal matrix: a snapshot
// taken under one (quantum, shards, objective/threshold/mem-axis) must
// not warm a cache computing different keys or a different LRU layout.
func TestSnapshotConfigChangeRefused(t *testing.T) {
	m := serveModels(t)
	base := PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Quantum: 0.1, Shards: 4}
	warm := planCacheFor(t, m, base)
	for _, r := range snapshotRuns() {
		if _, _, err := warm.Select(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := warm.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	arch := sim.GA100().Spec()
	gridSweeper, err := m.NewGridSweeper(arch, arch.DesignClocks(), arch.MemClocks())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		cache   func() (*PlanCache, error)
		errWant string
	}{
		{"different quantum", func() (*PlanCache, error) {
			cfg := base
			cfg.Quantum = 0.2
			return NewPlanCache(warm.sweeper, cfg)
		}, "quantum"},
		{"different shards", func() (*PlanCache, error) {
			cfg := base
			cfg.Shards = 8
			return NewPlanCache(warm.sweeper, cfg)
		}, "shards"},
		{"different threshold", func() (*PlanCache, error) {
			cfg := base
			cfg.Threshold = 0.05
			return NewPlanCache(warm.sweeper, cfg)
		}, "prefix"},
		{"different objective", func() (*PlanCache, error) {
			cfg := base
			cfg.Objective = objective.ED2P{}
			return NewPlanCache(warm.sweeper, cfg)
		}, "prefix"},
		{"memory axis added", func() (*PlanCache, error) {
			return NewPlanCache(gridSweeper, base)
		}, "prefix"},
	}
	for _, tc := range cases {
		pc, err := tc.cache()
		if err != nil {
			t.Fatalf("%s: building cache: %v", tc.name, err)
		}
		_, err = pc.LoadSnapshot(bytes.NewReader(snap))
		if err == nil {
			t.Errorf("%s: mismatched snapshot accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errWant) {
			t.Errorf("%s: error %q does not name the mismatch (%q)", tc.name, err, tc.errWant)
		}
		if pc.Len() != 0 {
			t.Errorf("%s: refused snapshot still installed %d entries", tc.name, pc.Len())
		}
	}
}

func TestSnapshotDeriveCacheRefusesLoad(t *testing.T) {
	m := serveModels(t)
	cfg := PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1}
	var buf bytes.Buffer
	if err := planCacheFor(t, m, cfg).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cfg.Derive = func([]objective.Profile, Selection) any { return struct{}{} }
	pc := planCacheFor(t, m, cfg)
	if _, err := pc.LoadSnapshot(&buf); err == nil || !strings.Contains(err.Error(), "Derive") {
		t.Fatalf("Derive-configured cache accepted a snapshot (err %v)", err)
	}
}

// TestSnapshotVersionRefused pins forward-compatibility: an unknown
// version is refused, not guessed at.
func TestSnapshotVersionRefused(t *testing.T) {
	m := serveModels(t)
	cfg := PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1}
	var buf bytes.Buffer
	if err := planCacheFor(t, m, cfg).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	bumped := bytes.Replace(buf.Bytes(), []byte(`"version":1`), []byte(`"version":2`), 1)
	if _, err := planCacheFor(t, m, cfg).LoadSnapshot(bytes.NewReader(bumped)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown snapshot version accepted (err %v)", err)
	}
}

// TestSnapshotCapacityClip pins the downgrade path: loading a snapshot
// from a bigger cache keeps each shard's most-recent slice and skips the
// rest, rather than refusing or overfilling.
func TestSnapshotCapacityClip(t *testing.T) {
	m := serveModels(t)
	big := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Shards: 1, Capacity: 64})
	runs := snapshotRuns()
	for _, r := range runs {
		if _, _, err := big.Select(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := big.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	small := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Shards: 1, Capacity: 3})
	n, err := small.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || small.Len() != 3 {
		t.Fatalf("clip loaded %d entries, Len %d, want 3", n, small.Len())
	}
	// The kept slice is the MRU end: the last-touched runs hit.
	if _, hit, err := small.Select(runs[len(runs)-1]); err != nil || !hit {
		t.Fatalf("MRU entry not kept by capacity clip (hit=%v, err=%v)", hit, err)
	}
}

func TestSaveSnapshotFileAtomicAndReloadable(t *testing.T) {
	m := serveModels(t)
	cfg := PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1}
	warm := planCacheFor(t, m, cfg)
	runs := snapshotRuns()
	for _, r := range runs {
		if _, _, err := warm.Select(r); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "plancache.snapshot")
	// Two saves in a row: the second replaces the first via rename, and
	// no temp files are left behind either time.
	for i := 0; i < 2; i++ {
		if err := warm.SaveSnapshotFile(path); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0].Name() != "plancache.snapshot" {
		t.Fatalf("snapshot dir not clean after save: %v", names)
	}

	cfgCold := cfg
	cfgCold.Sweep = failSweep(t)
	cold := planCacheFor(t, m, cfgCold)
	n, err := cold.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(runs) {
		t.Fatalf("reloaded %d entries, want %d", n, len(runs))
	}
	for _, r := range runs {
		if _, hit, err := cold.Select(r); err != nil || !hit {
			t.Fatalf("file round-trip lost an entry (hit=%v, err=%v)", hit, err)
		}
	}
}

func TestLoadSnapshotFileMissingIsColdStart(t *testing.T) {
	m := serveModels(t)
	pc := planCacheFor(t, m, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1})
	n, err := pc.LoadSnapshotFile(filepath.Join(t.TempDir(), "never-written"))
	if err != nil || n != 0 {
		t.Fatalf("missing snapshot file: (%d, %v), want (0, nil)", n, err)
	}
}

func TestKeyHashMatchesShardStripe(t *testing.T) {
	// KeyHash is exported for the router ring; pin it to the FNV-1a
	// constants so the ring and the shard stripes can never drift apart.
	if got := KeyHash(nil); got != 14695981039346656037 {
		t.Fatalf("KeyHash(nil) = %d, want the FNV-1a offset basis", got)
	}
	if got, want := KeyHash([]byte("a")), uint64(0xaf63dc4c8601ec8c); got != want {
		t.Fatalf("KeyHash(a) = %#x, want %#x", got, want)
	}
}
