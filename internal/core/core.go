// Package core implements the paper's primary contribution end to end
// (Figure 2): DNN-based power and performance models over mutual-
// information-selected GPU utilization features, and performance-aware
// optimal frequency selection with EDP/ED²P objectives.
//
// The workflow has two phases, mirroring §4:
//
//   - Offline training (Train / OfflineTrain): telemetry collected across
//     the full DVFS design space for the training benchmarks (DGEMM,
//     STREAM, SPEC ACCEL) is turned into a dataset, and two feed-forward
//     networks (3×64 SELU, RMSprop, MSE; 100 epochs for power, 25 for
//     time) are trained to map (fp_active, dram_active, sm_app_clock) to
//     power and slowdown.
//
//   - Online prediction (PredictProfile / OnlinePredict): an unseen
//     application is profiled once at the maximum clock; because the
//     selected features are DVFS- and input-size-invariant, that single
//     profile seeds predictions across every DVFS configuration, from
//     which the optimal frequency is selected.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/nn"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/stats"
)

// PaperPowerEpochs and PaperTimeEpochs are the epoch budgets of §4.3,
// chosen in the paper by watching the Figure 6 loss curves.
const (
	PaperPowerEpochs = 100
	PaperTimeEpochs  = 25
)

// TrainOptions configures model training. Zero values select the paper's
// configuration.
type TrainOptions struct {
	PowerEpochs int     // default PaperPowerEpochs
	TimeEpochs  int     // default PaperTimeEpochs
	Hidden      []int   // default {64,64,64}
	Activation  string  // default "selu"
	Optimizer   string  // default "rmsprop"
	LR          float64 // sets both models' learning rate; default per-model
	PowerLR     float64 // power model learning rate; default 0.002
	TimeLR      float64 // time model learning rate; default 0.001
	WeightDecay float64 // L2 weight decay; default 1e-4, negative disables
	Seed        int64   // weight init and shuffling; default 1
	// Workers bounds the goroutines used by the parallel stages that
	// consume these options (offline collection fan-out, cross-validation
	// folds). Zero means GOMAXPROCS. Results are bit-identical for any
	// worker count.
	Workers int
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.PowerEpochs == 0 {
		o.PowerEpochs = PaperPowerEpochs
	}
	if o.TimeEpochs == 0 {
		o.TimeEpochs = PaperTimeEpochs
	}
	if o.Hidden == nil {
		o.Hidden = []int{64, 64, 64}
	}
	if o.Activation == "" {
		o.Activation = "selu"
	}
	if o.Optimizer == "" {
		o.Optimizer = "rmsprop"
	}
	if o.LR != 0 {
		o.PowerLR, o.TimeLR = o.LR, o.LR
	}
	if o.PowerLR == 0 {
		o.PowerLR = 0.002
	}
	if o.TimeLR == 0 {
		o.TimeLR = 0.001
	}
	if o.WeightDecay == 0 {
		o.WeightDecay = 1e-4
	}
	if o.WeightDecay < 0 {
		o.WeightDecay = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Models bundles the trained power and performance networks with the
// feature layout and normalization context they were trained under.
type Models struct {
	Features   []string
	Scaler     *stats.StandardScaler // feature standardization fitted on the training set
	Power      *nn.Network
	Time       *nn.Network
	PowerHist  *nn.History
	TimeHist   *nn.History
	TrainedOn  string  // architecture name, informational
	TDPWatts   float64 // TDP of the trained-on architecture
	MaxFreqMHz float64 // maximum clock of the trained-on architecture

	// Backend records which device backend ("sim", "replay", ...) produced
	// the training telemetry. Informational; empty for models saved before
	// provenance was recorded.
	Backend string
	// DVFS is the trained-on architecture's DVFS table. A zero table means
	// unknown provenance (pre-provenance model files); otherwise serving
	// refuses a target claiming the same architecture name with a
	// different table (see CheckDVFS).
	DVFS DVFSTable

	// swMu guards the memoized per-target sweepers PredictProfile routes
	// through (see sweeper.go). Models must not be copied by value.
	swMu     sync.Mutex
	sweepers map[string]*Sweeper
}

// DVFSTable is the provenance record of a device's frequency design
// space: the bounds and step of the supported-clock ladder plus the floor
// of the paper's design-space subset.
type DVFSTable struct {
	MinMHz       float64 `json:"min_mhz"`
	MaxMHz       float64 `json:"max_mhz"`
	StepMHz      float64 `json:"step_mhz"`
	DesignMinMHz float64 `json:"design_min_mhz"`
}

// IsZero reports whether the table carries no provenance.
func (t DVFSTable) IsZero() bool { return t == DVFSTable{} }

// DVFSTableOf extracts the provenance table from an architecture spec.
func DVFSTableOf(a backend.Arch) DVFSTable {
	return DVFSTable{
		MinMHz:       a.MinFreqMHz,
		MaxMHz:       a.MaxFreqMHz,
		StepMHz:      a.StepMHz,
		DesignMinMHz: a.DesignMinFreqMHz,
	}
}

// CheckDVFS guards against serving a model on a device that claims the
// trained-on architecture but exposes a different DVFS table (a
// misconfigured replay trace, a renamed arch). Cross-architecture
// prediction — a target with a *different* name — is a supported feature
// and always passes; so do models without recorded provenance.
func (m *Models) CheckDVFS(target backend.Arch) error {
	if m.DVFS.IsZero() || target.Name != m.TrainedOn {
		return nil
	}
	got := DVFSTableOf(target)
	if got != m.DVFS {
		return fmt.Errorf("core: target %s DVFS table %+v does not match the table the model was trained on %+v",
			target.Name, got, m.DVFS)
	}
	return nil
}

// Train fits the power and time models on a dataset built by
// dataset.Build. The power model targets the TDP fraction; the time model
// targets the slowdown relative to the maximum clock.
func Train(ds *dataset.Dataset, opts TrainOptions) (*Models, error) {
	return TrainSplit(ds, ds, opts)
}

// TrainSplit fits the power model on powerDS and the time model on
// timeDS. The offline phase uses per-sample (20 ms, phase-resolved)
// telemetry for power — instantaneous power is a per-sample quantity, and
// the host-idle samples anchor the model's power floor at every clock —
// while execution time is a per-run quantity, so the time model trains on
// per-run aggregates. Both datasets must share a feature layout.
func TrainSplit(powerDS, timeDS *dataset.Dataset, opts TrainOptions) (*Models, error) {
	if len(powerDS.Points) == 0 || len(timeDS.Points) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if len(powerDS.FeatureNames) != len(timeDS.FeatureNames) {
		return nil, fmt.Errorf("core: datasets disagree on features: %v vs %v", powerDS.FeatureNames, timeDS.FeatureNames)
	}
	for i, n := range powerDS.FeatureNames {
		if timeDS.FeatureNames[i] != n {
			return nil, fmt.Errorf("core: datasets disagree on features: %v vs %v", powerDS.FeatureNames, timeDS.FeatureNames)
		}
	}
	ds := powerDS
	opts = opts.withDefaults()

	arch := nn.Arch{
		Inputs:    len(ds.FeatureNames),
		Hidden:    opts.Hidden,
		Outputs:   1,
		HiddenAct: opts.Activation,
		OutputAct: "linear",
	}
	mkTrainCfg := func(epochs int, lr float64) nn.TrainConfig {
		cfg := nn.PaperTrainConfig(epochs)
		cfg.Optimizer = nn.OptimizerConfig{Name: opts.Optimizer, LearningRate: lr}
		cfg.Seed = opts.Seed
		cfg.WeightDecay = opts.WeightDecay
		return cfg
	}

	// Standardize features: SELU's self-normalizing property assumes
	// zero-mean unit-variance inputs, and every other activation trains
	// better for it too. The scaler is fitted on the power dataset, whose
	// per-sample points span the wider feature range.
	scaler := &stats.StandardScaler{}
	if err := scaler.Fit(powerDS.X()); err != nil {
		return nil, fmt.Errorf("core: fitting feature scaler: %w", err)
	}
	xPower, err := scaler.Transform(powerDS.X())
	if err != nil {
		return nil, fmt.Errorf("core: scaling features: %w", err)
	}
	xTime, err := scaler.Transform(timeDS.X())
	if err != nil {
		return nil, fmt.Errorf("core: scaling features: %w", err)
	}

	power, err := nn.NewNetwork(arch, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: building power model: %w", err)
	}
	phist, err := power.Fit(xPower, powerDS.YPower(), mkTrainCfg(opts.PowerEpochs, opts.PowerLR))
	if err != nil {
		return nil, fmt.Errorf("core: training power model: %w", err)
	}

	tmodel, err := nn.NewNetwork(arch, opts.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("core: building time model: %w", err)
	}
	thist, err := tmodel.Fit(xTime, timeDS.YSlowdown(), mkTrainCfg(opts.TimeEpochs, opts.TimeLR))
	if err != nil {
		return nil, fmt.Errorf("core: training time model: %w", err)
	}

	return &Models{
		Features:   append([]string(nil), ds.FeatureNames...),
		Scaler:     scaler,
		Power:      power,
		Time:       tmodel,
		PowerHist:  phist,
		TimeHist:   thist,
		TrainedOn:  ds.Arch,
		TDPWatts:   ds.TDPWatts,
		MaxFreqMHz: ds.MaxFreqMHz,
	}, nil
}

// PredictProfile is the online phase: given one profiling run of an
// application at the target's maximum clock, it predicts the application's
// power, execution time, and energy at every frequency in freqs on the
// target architecture.
//
// Normalized targets make the models portable: power comes back as a TDP
// fraction and time as a slowdown, both denormalized against the *target*
// architecture — this is how models trained on GA100 predict for GV100.
//
// PredictProfile routes through a memoized per-target Sweeper, so repeated
// calls amortize the sweep-matrix construction; the outputs are
// bit-identical to the historical build-everything-per-call formulation.
// Callers that need the clamp count or an allocation-free path should use
// NewSweeper / Sweeper.PredictProfileInto directly.
func (m *Models) PredictProfile(target backend.Arch, maxRun dcgm.Run, freqs []float64) ([]objective.Profile, error) {
	if len(maxRun.Samples) == 0 {
		return nil, errors.New("core: profiling run has no samples")
	}
	if maxRun.FreqMHz != target.MaxFreqMHz {
		return nil, fmt.Errorf("core: profiling run was at %v MHz, want the maximum clock %v MHz", maxRun.FreqMHz, target.MaxFreqMHz)
	}
	if maxRun.ExecTimeSec <= 0 {
		return nil, fmt.Errorf("core: profiling run has non-positive exec time %v", maxRun.ExecTimeSec)
	}
	sw, err := m.sweeperFor(target, freqs, nil)
	if err != nil {
		return nil, err
	}
	out, _, err := sw.PredictProfile(maxRun)
	return out, err
}

// MeasuredProfiles converts measured sweep runs into objective profiles,
// averaging repeated runs at the same frequency — the "M-" side of the
// paper's M-EDP/P-EDP comparison.
func MeasuredProfiles(runs []dcgm.Run) []objective.Profile {
	type acc struct {
		t, p float64
		n    int
	}
	byFreq := map[float64]*acc{}
	var order []float64
	for _, r := range runs {
		a, ok := byFreq[r.FreqMHz]
		if !ok {
			a = &acc{}
			byFreq[r.FreqMHz] = a
			order = append(order, r.FreqMHz)
		}
		a.t += r.ExecTimeSec
		a.p += r.AvgPowerWatts
		a.n++
	}
	out := make([]objective.Profile, 0, len(order))
	for _, f := range order {
		a := byFreq[f]
		out = append(out, objective.Profile{
			FreqMHz:    f,
			TimeSec:    a.t / float64(a.n),
			PowerWatts: a.p / float64(a.n),
		})
	}
	return out
}

// Accuracy is the paper's Table 3 metric pair for one application: power
// and performance prediction accuracy (100 − MAPE) across the DVFS space.
type Accuracy struct {
	Power float64
	Time  float64
}

// EvaluateAccuracy compares predicted profiles against measured ones,
// matching by frequency, and returns Table 3-style accuracies.
func EvaluateAccuracy(predicted, measured []objective.Profile) (Accuracy, error) {
	predByFreq := map[float64]objective.Profile{}
	for _, p := range predicted {
		predByFreq[p.FreqMHz] = p
	}
	var mp, pp, mt, pt []float64
	for _, m := range measured {
		p, ok := predByFreq[m.FreqMHz]
		if !ok {
			continue
		}
		mp = append(mp, m.PowerWatts)
		pp = append(pp, p.PowerWatts)
		mt = append(mt, m.TimeSec)
		pt = append(pt, p.TimeSec)
	}
	if len(mp) == 0 {
		return Accuracy{}, errors.New("core: no overlapping frequencies between predicted and measured profiles")
	}
	pa, err := stats.Accuracy(mp, pp)
	if err != nil {
		return Accuracy{}, err
	}
	ta, err := stats.Accuracy(mt, pt)
	if err != nil {
		return Accuracy{}, err
	}
	return Accuracy{Power: pa, Time: ta}, nil
}

// Save writes both models into dir as power.json and time.json plus a
// manifest carrying the feature layout and normalization context.
func (m *Models) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := m.Power.SaveFile(filepath.Join(dir, "power.json")); err != nil {
		return fmt.Errorf("core: saving power model: %w", err)
	}
	if err := m.Time.SaveFile(filepath.Join(dir, "time.json")); err != nil {
		return fmt.Errorf("core: saving time model: %w", err)
	}
	return saveManifest(filepath.Join(dir, "manifest.json"), m)
}

// LoadModels reads models saved with Save.
func LoadModels(dir string) (*Models, error) {
	m, err := loadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	if m.Power, err = nn.LoadFile(filepath.Join(dir, "power.json")); err != nil {
		return nil, fmt.Errorf("core: loading power model: %w", err)
	}
	if m.Time, err = nn.LoadFile(filepath.Join(dir, "time.json")); err != nil {
		return nil, fmt.Errorf("core: loading time model: %w", err)
	}
	return m, nil
}
