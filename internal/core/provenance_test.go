package core

import (
	"path/filepath"
	"testing"

	"gpudvfs/internal/backend"
)

// TestManifestProvenanceRoundTrip pins the manifest's backend/DVFS
// provenance: what OfflineTrain stamps must survive Save/Load exactly.
func TestManifestProvenanceRoundTrip(t *testing.T) {
	m, err := Train(smallDataset(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	m.Backend = "sim"
	m.DVFS = DVFSTableOf(backend.GA100())

	dir := filepath.Join(t.TempDir(), "models")
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Backend != "sim" {
		t.Fatalf("backend provenance = %q, want sim", loaded.Backend)
	}
	if loaded.DVFS != m.DVFS {
		t.Fatalf("DVFS provenance = %+v, want %+v", loaded.DVFS, m.DVFS)
	}
	if loaded.DVFS.IsZero() {
		t.Fatal("round-tripped DVFS table is zero")
	}
}

// TestManifestProvenanceOptional checks that models without provenance
// (trained from a CSV of unknown origin, or saved by an older manifest)
// still round trip, loading with zero provenance.
func TestManifestProvenanceOptional(t *testing.T) {
	m, err := Train(smallDataset(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "models")
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Backend != "" || !loaded.DVFS.IsZero() {
		t.Fatalf("provenance appeared from nowhere: backend %q, dvfs %+v", loaded.Backend, loaded.DVFS)
	}
}

func TestCheckDVFS(t *testing.T) {
	ga := backend.GA100()
	m := &Models{TrainedOn: ga.Name, DVFS: DVFSTableOf(ga)}

	if err := m.CheckDVFS(ga); err != nil {
		t.Fatalf("matching table rejected: %v", err)
	}
	// Cross-arch prediction (the paper's GA100→GV100 transfer) stays
	// supported: a different architecture name is not a mismatch.
	if err := m.CheckDVFS(backend.GV100()); err != nil {
		t.Fatalf("cross-arch target rejected: %v", err)
	}
	// No recorded table (legacy manifest) means nothing to check.
	legacy := &Models{TrainedOn: ga.Name}
	if err := legacy.CheckDVFS(ga); err != nil {
		t.Fatalf("zero table rejected: %v", err)
	}
	// Same name, different table: a deployment mismatch, refused.
	drifted := ga
	drifted.StepMHz = 30
	if err := m.CheckDVFS(drifted); err == nil {
		t.Fatal("mismatched DVFS table accepted for the trained-on architecture")
	}
}

// TestSweeperRefusesMismatchedDVFS checks the enforcement point: a loaded
// model must refuse to serve an architecture whose DVFS table drifted from
// the one it was trained on.
func TestSweeperRefusesMismatchedDVFS(t *testing.T) {
	m, err := Train(smallDataset(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ga := backend.GA100()
	m.DVFS = DVFSTableOf(ga)

	if _, err := m.NewSweeper(ga, ga.DesignClocks()); err != nil {
		t.Fatalf("matching target rejected: %v", err)
	}
	drifted := ga
	drifted.MinFreqMHz = 600
	if _, err := m.NewSweeper(drifted, drifted.DesignClocks()); err == nil {
		t.Fatal("sweeper accepted a target with a drifted DVFS table")
	}
}
