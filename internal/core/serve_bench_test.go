package core

import (
	"sync/atomic"
	"testing"

	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/nn"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/stats"
	"gpudvfs/internal/workloads"
)

// benchModels builds paper-shaped models (3-64-64-64-1) without paying for
// training: the serving-path cost is identical for trained and untrained
// weights.
func benchModels(b *testing.B) *Models {
	b.Helper()
	arch := sim.GA100().Spec()
	power, err := nn.NewNetwork(nn.PaperArch(3), 1)
	if err != nil {
		b.Fatal(err)
	}
	tmodel, err := nn.NewNetwork(nn.PaperArch(3), 2)
	if err != nil {
		b.Fatal(err)
	}
	return &Models{
		Features:   []string{"fp_active", "dram_active", "sm_app_clock"},
		Scaler:     &stats.StandardScaler{Means: []float64{0.4, 0.3, 0.7}, Stds: []float64{0.2, 0.15, 0.25}},
		Power:      power,
		Time:       tmodel,
		TrainedOn:  arch.Name,
		TDPWatts:   arch.TDPWatts,
		MaxFreqMHz: arch.MaxFreqMHz,
	}
}

func benchProfileRun(b *testing.B) dcgm.Run {
	b.Helper()
	coll := dcgm.NewCollector(sim.New(sim.GA100(), 3), dcgm.Config{Seed: 9})
	run, err := coll.ProfileAtMax(workloads.DGEMM())
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// BenchmarkPredictProfile measures one online-phase prediction across the
// full 61-frequency design space — the paper's Algorithm 1 inner loop and
// the serving hot path of a frequency-selection service.
func BenchmarkPredictProfile(b *testing.B) {
	m := benchModels(b)
	run := benchProfileRun(b)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictProfile(arch, run, freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictProfileInto is the fully amortized sweep: pre-built
// sweeper, caller-owned profile buffer. This is the path a long-running
// governor sits on; the target is zero steady-state allocations.
func BenchmarkPredictProfileInto(b *testing.B) {
	m := benchModels(b)
	run := benchProfileRun(b)
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]objective.Profile, len(sw.Freqs()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.PredictProfileInto(dst, run); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMissRuns pregenerates profiling runs whose quantized feature
// vectors never collide, so a capacity-starved cache treats every request
// as a miss — the contended path the sharded cache exists for.
func benchMissRuns(n int) []dcgm.Run {
	runs := make([]dcgm.Run, n)
	for i := range runs {
		runs[i] = dcgm.Run{
			FreqMHz:     1410,
			ExecTimeSec: 1,
			Samples: []dcgm.Sample{{
				FP32Active:    0.05 + 0.17*float64(i%257),
				DRAMActive:    0.10 + 0.19*float64(i/257),
				SMAppClockMHz: 1410,
			}},
		}
	}
	return runs
}

// benchSelectMiss drives concurrent all-miss Selects through a cache with
// the given shard count. Capacity 1 keeps every shard permanently full, so
// each Select recomputes its sweep — isolating map/LRU lock contention plus
// sweep cost under parallel load.
func benchSelectMiss(b *testing.B, shards int) {
	m := benchModels(b)
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		b.Fatal(err)
	}
	pc, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1, Capacity: 1, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	runs := benchMissRuns(1024)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := runs[next.Add(1)%uint64(len(runs))]
			if _, _, err := pc.Select(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCacheSelectMissSingleShard is the PR 3 baseline shape: one
// global mutex in front of every miss.
func BenchmarkPlanCacheSelectMissSingleShard(b *testing.B) { benchSelectMiss(b, 1) }

// BenchmarkPlanCacheSelectMissSharded is the lock-striped cache at its
// default 16 shards.
func BenchmarkPlanCacheSelectMissSharded(b *testing.B) { benchSelectMiss(b, 16) }

// BenchmarkBatchSweep8 measures the fused 8-run sweep — one (8·61)×3
// forward pass per model instead of eight 61×3 passes.
func BenchmarkBatchSweep8(b *testing.B) {
	m := benchModels(b)
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		b.Fatal(err)
	}
	const batch = 8
	runs := benchMissRuns(batch)
	dsts := make([][]objective.Profile, batch)
	for i := range dsts {
		dsts[i] = make([]objective.Profile, len(sw.Freqs()))
	}
	clamped := make([]Clamps, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sw.PredictProfilesInto(dsts, clamped, runs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheSelect measures a steady stream of same-character
// online queries — after the first miss, every Select is a cache hit.
func BenchmarkPlanCacheSelect(b *testing.B) {
	m := benchModels(b)
	run := benchProfileRun(b)
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		b.Fatal(err)
	}
	pc, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pc.Select(run); err != nil {
			b.Fatal(err)
		}
	}
}
