//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Its runtime allocates on instrumented paths (including sync.Pool gets),
// so zero-alloc assertions only hold in non-race builds.
const raceEnabled = true
