package core

import (
	"sync"
	"sync/atomic"
	"testing"

	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/workloads"
)

// TestPlanCacheHitPathZeroAlloc pins the hit path's allocation count at
// zero: after the first miss populates a bucket, repeated Selects for the
// same workload character must not touch the heap. This is the property the
// fleet simulator's event loop depends on for its 0 allocs/op bar.
func TestPlanCacheHitPathZeroAlloc(t *testing.T) {
	m := serveModels(t)
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPlanCache(sw, PlanCacheConfig{
		Objective: objective.EDP{},
		Threshold: -1,
		Derive: func(profiles []objective.Profile, sel Selection) any {
			return len(profiles)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := serveRun(t, 11, workloads.DGEMM())
	if _, _, err := pc.Select(run); err != nil {
		t.Fatal(err)
	}
	// Warm the key workspace pool (first Get allocates the workspace).
	for i := 0; i < 8; i++ {
		if _, _, _, err := pc.SelectDerived(run); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, err := pc.SelectDerived(run); err != nil {
			t.Fatal(err)
		}
		if _, _, err := pc.Select(run); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 && !raceEnabled {
		t.Fatalf("plan-cache hit path allocates: %v allocs/op, want 0", allocs)
	}
}

// TestPlanCacheDerivePayload checks the Derive contract: computed exactly
// once per bucket (on the miss, after selection succeeds), the identical
// payload returned on every subsequent hit, and nil when Derive is unset.
func TestPlanCacheDerivePayload(t *testing.T) {
	m := serveModels(t)
	arch := sim.GA100().Spec()
	sw, err := m.NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		t.Fatal(err)
	}

	type payload struct {
		n   int
		sel Selection
	}
	var calls atomic.Int64
	pc, err := NewPlanCache(sw, PlanCacheConfig{
		Objective: objective.EDP{},
		Threshold: -1,
		Derive: func(profiles []objective.Profile, sel Selection) any {
			calls.Add(1)
			return &payload{n: len(profiles), sel: sel}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	run := serveRun(t, 21, workloads.DGEMM())
	sel0, d0, hit, err := pc.SelectDerived(run)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first SelectDerived reported a hit")
	}
	p0, ok := d0.(*payload)
	if !ok {
		t.Fatalf("derived payload has type %T, want *payload", d0)
	}
	if p0.n != sw.GridSize() {
		t.Fatalf("Derive saw %d profiles, want grid size %d", p0.n, sw.GridSize())
	}
	if p0.sel != sel0 {
		t.Fatalf("Derive saw selection %+v, SelectDerived returned %+v", p0.sel, sel0)
	}

	// Hits — including concurrent ones — return the same pointer without
	// re-invoking Derive.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				sel, d, hit, err := pc.SelectDerived(run)
				if err != nil {
					t.Error(err)
					return
				}
				if !hit {
					t.Error("repeat SelectDerived missed")
					return
				}
				if d != d0 {
					t.Errorf("hit returned payload %p, want the memoized %p", d, d0)
					return
				}
				if sel != sel0 {
					t.Errorf("hit selection %+v != miss selection %+v", sel, sel0)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("Derive ran %d times for one bucket, want 1", n)
	}

	// A distinct workload character gets its own payload.
	run2 := serveRun(t, 22, workloads.STREAM())
	_, d2, _, err := pc.SelectDerived(run2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 == d0 {
		t.Fatal("distinct buckets share one Derive payload")
	}

	// Without Derive, the payload is nil and selections are unchanged.
	plain, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}, Threshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	selP, dP, _, err := plain.SelectDerived(run)
	if err != nil {
		t.Fatal(err)
	}
	if dP != nil {
		t.Fatalf("Derive unset but payload %v returned", dP)
	}
	if selP != sel0 {
		t.Fatalf("selection drifted without Derive: %+v vs %+v", selP, sel0)
	}
}
