package core

import (
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/workloads"
)

func cvRuns(t *testing.T) []dcgm.Run {
	t.Helper()
	dev := sim.New(sim.GA100(), 91)
	coll := dcgm.NewCollector(dev, dcgm.Config{
		Freqs:            []float64{510, 750, 990, 1200, 1410},
		Runs:             2,
		MaxSamplesPerRun: 4,
		Seed:             92,
	})
	// A spectrum-covering campaign: each fold still retains compute-bound,
	// memory-bound, mixed, and host-heavy training coverage.
	var ks []sim.KernelProfile
	ks = append(ks, workloads.DGEMM(), workloads.STREAM())
	for _, name := range []string{"MRIQ", "LBM", "HOTSPOT", "GE", "NW", "BPLUSTREE"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, w)
	}
	runs, err := coll.CollectAll(backend.Workloads(ks))
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestCrossValidate(t *testing.T) {
	runs := cvRuns(t)
	accs, order, err := CrossValidate(sim.GA100().Spec(), runs,
		TrainOptions{PowerEpochs: 150, TimeEpochs: 250, Hidden: []int{24, 24}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 8 || len(order) != 8 {
		t.Fatalf("%d folds", len(accs))
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("order not sorted: %v", order)
		}
	}
	var sumP, sumT float64
	for w, acc := range accs {
		if acc.Power < 0 || acc.Power > 100 || acc.Time < 0 || acc.Time > 100 {
			t.Errorf("%s: degenerate accuracy %+v", w, acc)
		}
		sumP += acc.Power
		sumT += acc.Time
	}
	// Held-out generalization at a quick training budget is noisy per
	// fold; the campaign-level averages must still be informative.
	if avg := sumP / 8; avg < 55 {
		t.Errorf("average held-out power accuracy %v too low", avg)
	}
	if avg := sumT / 8; avg < 55 {
		t.Errorf("average held-out time accuracy %v too low", avg)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	if _, _, err := CrossValidate(sim.GA100().Spec(), nil, quickOpts()); err == nil {
		t.Fatal("no runs accepted")
	}
	runs := cvRuns(t)
	var single []dcgm.Run
	for _, r := range runs {
		if r.Workload == "DGEMM" {
			single = append(single, r)
		}
	}
	if _, _, err := CrossValidate(sim.GA100().Spec(), single, quickOpts()); err == nil {
		t.Fatal("single-workload campaign accepted")
	}
}

func TestMaxClockRunMissing(t *testing.T) {
	runs := []dcgm.Run{{FreqMHz: 900}}
	if _, err := maxClockRun(sim.GA100().Spec(), runs); err == nil {
		t.Fatal("missing max-clock run accepted")
	}
}

func TestMeasuredFreqsSorted(t *testing.T) {
	runs := []dcgm.Run{{FreqMHz: 1410}, {FreqMHz: 510}, {FreqMHz: 900}, {FreqMHz: 510}}
	fs := measuredFreqs(runs)
	if len(fs) != 3 || fs[0] != 510 || fs[2] != 1410 {
		t.Fatalf("freqs = %v", fs)
	}
}
