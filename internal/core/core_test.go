package core

import (
	"math"
	"path/filepath"
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/workloads"
)

// quickOpts keeps unit-test trainings fast.
func quickOpts() TrainOptions {
	return TrainOptions{PowerEpochs: 15, TimeEpochs: 10, Hidden: []int{16, 16}, Seed: 1}
}

// smallDataset collects a reduced sweep of two contrasting workloads.
func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	dev := sim.New(sim.GA100(), 31)
	coll := dcgm.NewCollector(dev, dcgm.Config{
		Freqs: []float64{510, 750, 990, 1200, 1410},
		Runs:  2,
		Seed:  32,
	})
	nw, err := workloads.ByName("NW")
	if err != nil {
		t.Fatal(err)
	}
	runs, err := coll.CollectAll(backend.Workloads([]sim.KernelProfile{workloads.DGEMM(), workloads.STREAM(), nw}))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Build(sim.GA100().Spec(), runs, dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainProducesModels(t *testing.T) {
	ds := smallDataset(t)
	m, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if m.Power == nil || m.Time == nil || m.Scaler == nil {
		t.Fatal("incomplete models")
	}
	if len(m.PowerHist.TrainLoss) != 15 || len(m.TimeHist.TrainLoss) != 10 {
		t.Fatalf("history lengths %d/%d", len(m.PowerHist.TrainLoss), len(m.TimeHist.TrainLoss))
	}
	if m.TrainedOn != "GA100" || m.TDPWatts != 500 || m.MaxFreqMHz != 1410 {
		t.Fatalf("context %+v", m)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	if _, err := Train(&dataset.Dataset{}, quickOpts()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestTrainBadOptions(t *testing.T) {
	ds := smallDataset(t)
	for _, opts := range []TrainOptions{
		{Activation: "bogus", PowerEpochs: 1, TimeEpochs: 1},
		{Optimizer: "bogus", PowerEpochs: 1, TimeEpochs: 1},
	} {
		if _, err := Train(ds, opts); err == nil {
			t.Errorf("bad options accepted: %+v", opts)
		}
	}
}

func TestTrainDefaultsMatchPaper(t *testing.T) {
	o := TrainOptions{}.withDefaults()
	if o.PowerEpochs != 100 || o.TimeEpochs != 25 {
		t.Fatalf("default epochs %d/%d", o.PowerEpochs, o.TimeEpochs)
	}
	if o.Activation != "selu" || o.Optimizer != "rmsprop" {
		t.Fatalf("defaults %s/%s", o.Activation, o.Optimizer)
	}
	if len(o.Hidden) != 3 || o.Hidden[0] != 64 {
		t.Fatalf("hidden %v", o.Hidden)
	}
	// LR override sets both.
	o = TrainOptions{LR: 0.5}.withDefaults()
	if o.PowerLR != 0.5 || o.TimeLR != 0.5 {
		t.Fatalf("LR override: %v/%v", o.PowerLR, o.TimeLR)
	}
}

func TestPredictProfile(t *testing.T) {
	ds := smallDataset(t)
	m, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	arch := sim.GA100().Spec()
	dev := sim.New(sim.GA100(), 33)
	coll := dcgm.NewCollector(dev, dcgm.Config{Seed: 34})
	run, err := coll.ProfileAtMax(workloads.LAMMPS())
	if err != nil {
		t.Fatal(err)
	}
	freqs := arch.DesignClocks()
	profiles, err := m.PredictProfile(arch, run, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(freqs) {
		t.Fatalf("%d profiles for %d freqs", len(profiles), len(freqs))
	}
	for i, p := range profiles {
		if p.FreqMHz != freqs[i] {
			t.Fatalf("profile %d at %v, want %v", i, p.FreqMHz, freqs[i])
		}
		if p.PowerWatts < 0 || p.TimeSec <= 0 {
			t.Fatalf("degenerate prediction %+v", p)
		}
	}
}

func TestPredictProfileErrors(t *testing.T) {
	ds := smallDataset(t)
	m, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	arch := sim.GA100().Spec()
	good := dcgm.Run{FreqMHz: 1410, ExecTimeSec: 1, Samples: []dcgm.Sample{{SMAppClockMHz: 1410}}}

	noSamples := good
	noSamples.Samples = nil
	if _, err := m.PredictProfile(arch, noSamples, []float64{1410}); err == nil {
		t.Fatal("run without samples accepted")
	}
	wrongClock := good
	wrongClock.FreqMHz = 900
	if _, err := m.PredictProfile(arch, wrongClock, []float64{1410}); err == nil {
		t.Fatal("non-max profiling clock accepted")
	}
	zeroTime := good
	zeroTime.ExecTimeSec = 0
	if _, err := m.PredictProfile(arch, zeroTime, []float64{1410}); err == nil {
		t.Fatal("zero exec time accepted")
	}
}

func TestMeasuredProfilesAveragesRuns(t *testing.T) {
	runs := []dcgm.Run{
		{FreqMHz: 900, ExecTimeSec: 2, AvgPowerWatts: 100},
		{FreqMHz: 900, ExecTimeSec: 4, AvgPowerWatts: 200},
		{FreqMHz: 1410, ExecTimeSec: 1, AvgPowerWatts: 400},
	}
	ps := MeasuredProfiles(runs)
	if len(ps) != 2 {
		t.Fatalf("%d profiles", len(ps))
	}
	byFreq := map[float64]objective.Profile{}
	for _, p := range ps {
		byFreq[p.FreqMHz] = p
	}
	if byFreq[900].TimeSec != 3 || byFreq[900].PowerWatts != 150 {
		t.Fatalf("average = %+v", byFreq[900])
	}
}

func TestEvaluateAccuracy(t *testing.T) {
	measured := []objective.Profile{
		{FreqMHz: 900, TimeSec: 2, PowerWatts: 100},
		{FreqMHz: 1410, TimeSec: 1, PowerWatts: 200},
	}
	predicted := []objective.Profile{
		{FreqMHz: 900, TimeSec: 2.2, PowerWatts: 90},
		{FreqMHz: 1410, TimeSec: 0.9, PowerWatts: 220},
	}
	acc, err := EvaluateAccuracy(predicted, measured)
	if err != nil {
		t.Fatal(err)
	}
	// Power MAPE = (10% + 10%)/2 = 10% → accuracy 90.
	if math.Abs(acc.Power-90) > 1e-9 {
		t.Fatalf("power accuracy = %v", acc.Power)
	}
	if math.Abs(acc.Time-90) > 1e-9 {
		t.Fatalf("time accuracy = %v", acc.Time)
	}
}

func TestEvaluateAccuracyNoOverlap(t *testing.T) {
	if _, err := EvaluateAccuracy(
		[]objective.Profile{{FreqMHz: 900}},
		[]objective.Profile{{FreqMHz: 1410}},
	); err == nil {
		t.Fatal("disjoint frequencies accepted")
	}
}

func TestSaveLoadModels(t *testing.T) {
	ds := smallDataset(t)
	m, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "models")
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TrainedOn != m.TrainedOn || loaded.TDPWatts != m.TDPWatts {
		t.Fatalf("manifest round trip: %+v", loaded)
	}
	if len(loaded.Features) != len(m.Features) {
		t.Fatal("features lost")
	}
	if loaded.Scaler == nil {
		t.Fatal("scaler lost")
	}

	// Predictions must be identical through the round trip.
	arch := sim.GA100().Spec()
	run := dcgm.Run{FreqMHz: 1410, ExecTimeSec: 2,
		Samples: []dcgm.Sample{{FP64Active: 0.5, FP32Active: 0.2, DRAMActive: 0.3, SMAppClockMHz: 1410}}}
	a, err := m.PredictProfile(arch, run, []float64{510, 1410})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.PredictProfile(arch, run, []float64{510, 1410})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction changed after reload: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestLoadModelsMissingDir(t *testing.T) {
	if _, err := LoadModels(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory accepted")
	}
}

func TestSelectFrequency(t *testing.T) {
	ps := []objective.Profile{
		{FreqMHz: 510, TimeSec: 4.0, PowerWatts: 120},
		{FreqMHz: 1080, TimeSec: 2.2, PowerWatts: 220},
		{FreqMHz: 1410, TimeSec: 2.0, PowerWatts: 460},
	}
	sel, err := SelectFrequency(ps, objective.EDP{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.FreqMHz != 1080 || sel.Objective != "EDP" {
		t.Fatalf("selection %+v", sel)
	}
	if sel.EnergyPct <= 0 {
		t.Fatalf("no saving reported: %+v", sel)
	}
	// A tight threshold pushes to max clock (zero trade-off).
	sel, err = SelectFrequency(ps, objective.EDP{}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sel.FreqMHz != 1410 {
		t.Fatalf("thresholded selection %v", sel.FreqMHz)
	}
}

// TestOfflineOnlineIntegration runs the full pipeline on a reduced sweep
// and requires sane end-to-end accuracy.
func TestOfflineOnlineIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	arch := sim.GA100()
	dev := sim.New(arch, 41)
	// Runs:1 keeps the campaign fast but makes the single-run ground truth
	// noisy (time accuracy ranges ~55-90 across campaign seeds); the seed
	// pins a representative mid-band draw under the per-workload-seeded
	// collector. Paper-fidelity bands are asserted by the experiments
	// tests at Runs:3.
	off, err := OfflineTrain(dev, backend.Workloads(workloads.TrainingSet()), dcgm.Config{Runs: 1, Seed: 13}, TrainOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Dataset.Points) != 21*61 {
		t.Fatalf("dataset points = %d", len(off.Dataset.Points))
	}

	app := workloads.BERT()
	on, err := OnlinePredict(sim.New(arch, 43), off.Models, app, dcgm.Config{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	coll := dcgm.NewCollector(sim.New(arch, 45), dcgm.Config{Runs: 1, Seed: 46})
	runs, err := coll.CollectWorkload(app)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := EvaluateAccuracy(on.Predicted, MeasuredProfiles(runs))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Power < 85 || acc.Time < 75 {
		t.Fatalf("end-to-end accuracy too low: power %.1f time %.1f", acc.Power, acc.Time)
	}
}
