package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
)

// CrossValidate performs leave-one-workload-out cross-validation over a
// collected training campaign: for each workload present in runs, it
// trains power and time models on every *other* workload's runs and
// evaluates prediction accuracy on the held-out one, using the held-out
// workload's own max-clock run as the online profile.
//
// This is a stronger generalization estimate than the paper's 80/20
// random split (which leaks every workload into both partitions): it
// measures exactly what the deployment scenario demands — accuracy on an
// application the models never saw.
//
// The result maps workload name to its held-out accuracy, and the
// returned order lists workloads sorted by name for deterministic
// iteration. Each fold trains from scratch; expect roughly one training
// cost per workload.
func CrossValidate(arch backend.Arch, runs []dcgm.Run, opts TrainOptions) (map[string]Accuracy, []string, error) {
	if len(runs) == 0 {
		return nil, nil, errors.New("core: no runs")
	}
	byWorkload := map[string][]dcgm.Run{}
	for _, r := range runs {
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	if len(byWorkload) < 2 {
		return nil, nil, fmt.Errorf("core: cross-validation needs at least 2 workloads, have %d", len(byWorkload))
	}
	names := make([]string, 0, len(byWorkload))
	for w := range byWorkload {
		names = append(names, w)
	}
	sort.Strings(names)

	// Each fold is an independent train-and-evaluate on its own data and
	// its own deterministic seed (carried in opts), so folds fan out over a
	// worker pool. Results land in per-fold slots and are assembled in
	// sorted-name order, making the output identical — bit for bit — to the
	// serial loop for any worker count.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	accs := make([]Accuracy, len(names))
	errs := make([]error, len(names))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range jobs {
				accs[f], errs[f] = crossValidateFold(arch, names, f, byWorkload, opts)
			}
		}()
	}
	for f := range names {
		jobs <- f
	}
	close(jobs)
	wg.Wait()

	out := make(map[string]Accuracy, len(names))
	for f, held := range names {
		if errs[f] != nil {
			return nil, nil, fmt.Errorf("core: fold %s: %w", held, errs[f])
		}
		out[held] = accs[f]
	}
	return out, names, nil
}

// crossValidateFold trains on every workload except names[fold] and
// evaluates on the held-out one.
func crossValidateFold(arch backend.Arch, names []string, fold int, byWorkload map[string][]dcgm.Run, opts TrainOptions) (Accuracy, error) {
	held := names[fold]
	var trainRuns []dcgm.Run
	for _, w := range names {
		if w != held {
			trainRuns = append(trainRuns, byWorkload[w]...)
		}
	}
	ds, err := dataset.Build(arch, trainRuns, dataset.Options{})
	if err != nil {
		return Accuracy{}, err
	}
	sds, err := dataset.Build(arch, trainRuns, dataset.Options{PerSample: true})
	if err != nil {
		return Accuracy{}, err
	}
	models, err := TrainSplit(sds, ds, opts)
	if err != nil {
		return Accuracy{}, err
	}

	heldRuns := byWorkload[held]
	profile, err := maxClockRun(arch, heldRuns)
	if err != nil {
		return Accuracy{}, err
	}
	predicted, err := models.PredictProfile(arch, profile, measuredFreqs(heldRuns))
	if err != nil {
		return Accuracy{}, err
	}
	return EvaluateAccuracy(predicted, MeasuredProfiles(heldRuns))
}

// maxClockRun returns one run of the set taken at the architecture's
// maximum clock, to serve as the online profile.
func maxClockRun(arch backend.Arch, runs []dcgm.Run) (dcgm.Run, error) {
	for _, r := range runs {
		if r.FreqMHz == arch.MaxFreqMHz {
			return r, nil
		}
	}
	return dcgm.Run{}, fmt.Errorf("no run at the maximum clock %v MHz", arch.MaxFreqMHz)
}

// measuredFreqs lists the distinct frequencies present, ascending.
func measuredFreqs(runs []dcgm.Run) []float64 {
	set := map[float64]bool{}
	for _, r := range runs {
		set[r.FreqMHz] = true
	}
	out := make([]float64, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Float64s(out)
	return out
}
