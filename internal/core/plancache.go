package core

import (
	"container/list"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"

	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
)

// PlanCacheConfig configures a PlanCache.
type PlanCacheConfig struct {
	// Objective ranks candidate frequencies (required).
	Objective objective.Objective
	// Threshold is Algorithm 1's performance bound; negative selects the
	// unconstrained optimum.
	Threshold float64
	// Quantum is the feature-quantization bucket width. Two profiling runs
	// whose mean feature vectors fall in the same bucket in every dimension
	// share a cache entry; two runs that differ by more than the quantum in
	// any dimension never do. Pick a value at or below the workload-drift
	// tolerance you consider "the same workload". Default 0.1.
	Quantum float64
	// Capacity bounds the number of memoized selections (LRU eviction).
	// Default 1024.
	Capacity int
}

func (c PlanCacheConfig) withDefaults() (PlanCacheConfig, error) {
	if c.Objective == nil {
		return c, errors.New("core: PlanCacheConfig.Objective is required")
	}
	if c.Quantum == 0 {
		c.Quantum = 0.1
	}
	if c.Quantum < 0 {
		return c, fmt.Errorf("core: negative plan-cache quantum %v", c.Quantum)
	}
	if c.Capacity == 0 {
		c.Capacity = 1024
	}
	if c.Capacity < 1 {
		return c, fmt.Errorf("core: plan-cache capacity %d < 1", c.Capacity)
	}
	return c, nil
}

// PlanCacheStats counts cache activity.
type PlanCacheStats struct {
	Hits, Misses, Evictions uint64
}

// planEntry is one singleflight-memoized selection: the first caller for a
// key computes under the entry's once while concurrent callers for the
// same key wait on it instead of predicting redundantly.
type planEntry struct {
	key  string
	elem *list.Element

	once    sync.Once
	sel     Selection
	clamped int
	err     error
}

// PlanCache memoizes online frequency selections for a fixed (target,
// frequency list, objective, threshold), keyed by the profiling run's
// quantized mean feature vector. Workloads of the same computational
// character — features within one quantization bucket — resolve to one
// cached Selection; the underlying sweep+selection runs once per bucket,
// guarded by a per-key singleflight. The cache is bounded (LRU) and safe
// for concurrent use.
type PlanCache struct {
	sweeper *Sweeper
	cfg     PlanCacheConfig
	prefix  string // arch + objective + threshold, shared by every key

	mu      sync.Mutex // guards entries/lru/stats, never held during prediction
	entries map[string]*planEntry
	lru     *list.List // of *planEntry, front = most recent
	stats   PlanCacheStats
}

// NewPlanCache builds a plan cache over a sweeper.
func NewPlanCache(s *Sweeper, cfg PlanCacheConfig) (*PlanCache, error) {
	if s == nil {
		return nil, errors.New("core: plan cache needs a sweeper")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &PlanCache{
		sweeper: s,
		cfg:     cfg,
		prefix:  s.target.Name + "|" + cfg.Objective.Name() + "|" + strconv.FormatFloat(cfg.Threshold, 'g', -1, 64) + "|",
		entries: map[string]*planEntry{},
		lru:     list.New(),
	}, nil
}

// quantizeFeature maps a feature value to its bucket index under quantum q.
// Buckets are half-open [k·q, (k+1)·q): values that differ by more than q
// (beyond float-division rounding slop) can never share a bucket, while a
// ±1 ulp perturbation can only change the bucket when the value sits at a
// bucket boundary. Non-finite and out-of-range values collapse to sentinel
// buckets so a pathological sample cannot produce an unbounded key space.
func quantizeFeature(v, q float64) int64 {
	r := math.Floor(v / q)
	switch {
	case math.IsNaN(r):
		return math.MinInt64
	case r > 1e18:
		return math.MaxInt64
	case r < -1e18:
		return math.MinInt64 + 1
	}
	return int64(r)
}

// keyFor builds the cache key for a profiling run's mean sample: the shared
// (arch, objective, threshold) prefix plus the quantized feature vector.
func (c *PlanCache) keyFor(mean dcgm.Sample) (string, error) {
	m := c.sweeper.models
	base := make([]float64, len(m.Features))
	if err := dataset.FeatureVectorInto(base, m.Features, mean, c.sweeper.target.MaxFreqMHz, c.sweeper.target.MaxFreqMHz); err != nil {
		return "", err
	}
	buf := make([]byte, 0, len(c.prefix)+16*len(base))
	buf = append(buf, c.prefix...)
	for _, v := range base {
		buf = strconv.AppendInt(buf, quantizeFeature(v, c.cfg.Quantum), 36)
		buf = append(buf, ',')
	}
	return string(buf), nil
}

// Select returns the frequency selection for a profiling run, serving
// repeated queries for same-character workloads from the cache. hit
// reports whether the selection was memoized. The returned Selection on a
// hit is identical to the one the original computation produced.
func (c *PlanCache) Select(maxRun dcgm.Run) (sel Selection, hit bool, err error) {
	if err := c.sweeper.validateRun(maxRun); err != nil {
		return Selection{}, false, err
	}
	key, err := c.keyFor(maxRun.MeanSample())
	if err != nil {
		return Selection{}, false, err
	}

	c.mu.Lock()
	e, hit := c.entries[key]
	if hit {
		c.lru.MoveToFront(e.elem)
		c.stats.Hits++
	} else {
		e = &planEntry{key: key}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.stats.Misses++
		for c.lru.Len() > c.cfg.Capacity {
			back := c.lru.Back()
			old := back.Value.(*planEntry)
			c.lru.Remove(back)
			delete(c.entries, old.key)
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()

	e.once.Do(func() {
		profiles := make([]objective.Profile, len(c.sweeper.freqs))
		clamped, perr := c.sweeper.PredictProfileInto(profiles, maxRun)
		if perr != nil {
			e.err = perr
			return
		}
		e.clamped = clamped
		e.sel, e.err = SelectFrequency(profiles, c.cfg.Objective, c.cfg.Threshold)
	})
	if e.err != nil {
		// Drop the failed entry so a transient error does not poison the
		// bucket for later callers.
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == e {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return Selection{}, false, e.err
	}
	return e.sel, hit, nil
}

// Clamped returns the clamp count recorded when the given run's bucket was
// computed, and whether that bucket is currently cached.
func (c *PlanCache) Clamped(maxRun dcgm.Run) (int, bool) {
	key, err := c.keyFor(maxRun.MeanSample())
	if err != nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.clamped, true
	}
	return 0, false
}

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memoized selections.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
