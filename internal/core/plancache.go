package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
)

// SweepFunc computes one design-space sweep for a profiling run, writing
// one profile per design point into dst and returning the per-axis clamp
// counts — the contract of Sweeper.PredictProfileInto lifted into a
// function value so serving layers can reroute cache misses (e.g. through
// a micro-batcher) without the cache knowing. Any replacement must be
// bit-identical to the direct sweeper path, or cached selections stop
// matching the unbatched formulation.
type SweepFunc func(ctx context.Context, dst []objective.Profile, maxRun dcgm.Run) (Clamps, error)

// PlanCacheConfig configures a PlanCache.
type PlanCacheConfig struct {
	// Objective ranks candidate frequencies (required).
	Objective objective.Objective
	// Threshold is Algorithm 1's performance bound; negative selects the
	// unconstrained optimum.
	Threshold float64
	// Quantum is the feature-quantization bucket width. Two profiling runs
	// whose mean feature vectors fall in the same bucket in every dimension
	// share a cache entry; two runs that differ by more than the quantum in
	// any dimension never do. Pick a value at or below the workload-drift
	// tolerance you consider "the same workload". Default 0.1.
	Quantum float64
	// Capacity bounds the total number of memoized selections across all
	// shards; each shard holds an LRU-bounded ceil(Capacity/Shards) slice
	// of it. Default 1024.
	Capacity int
	// Shards is the number of lock-striped shards the cache is split into,
	// rounded up to a power of two. Concurrent Selects whose keys hash to
	// different shards never contend on a mutex. Default 16; set 1 to
	// restore a single global LRU order (exact-capacity eviction).
	Shards int
	// Sweep overrides how a cache miss computes its profile sweep; nil uses
	// the cache's sweeper directly (PredictProfileInto). internal/serve
	// injects its micro-batched sweep here.
	Sweep SweepFunc
	// Derive, when set, is called once per miss — after the sweep and
	// selection succeed — with the predicted profiles and the chosen
	// selection, and its return value is memoized alongside the entry.
	// SelectDerived hands the payload back on every hit without recomputing
	// it, which is how an online planner (the fleet simulator's
	// deadline-feasibility curve) rides the cache without copying profiles
	// per request. The profiles slice is owned by the cache entry: Derive
	// may read it and keep references, but must not modify it.
	Derive func(profiles []objective.Profile, sel Selection) any
}

func (c PlanCacheConfig) withDefaults() (PlanCacheConfig, error) {
	if c.Objective == nil {
		return c, errors.New("core: PlanCacheConfig.Objective is required")
	}
	if c.Quantum == 0 {
		c.Quantum = 0.1
	}
	if c.Quantum < 0 {
		return c, fmt.Errorf("core: negative plan-cache quantum %v", c.Quantum)
	}
	if c.Capacity == 0 {
		c.Capacity = 1024
	}
	if c.Capacity < 1 {
		return c, fmt.Errorf("core: plan-cache capacity %d < 1", c.Capacity)
	}
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.Shards < 1 {
		return c, fmt.Errorf("core: plan-cache shard count %d < 1", c.Shards)
	}
	if c.Shards > 1<<16 {
		return c, fmt.Errorf("core: plan-cache shard count %d > %d", c.Shards, 1<<16)
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	return c, nil
}

// PlanCacheStats counts cache activity.
type PlanCacheStats struct {
	Hits, Misses, Evictions uint64
}

// planEntry is one singleflight-memoized selection: the first caller for a
// key computes under the entry's once while concurrent callers for the
// same key wait on it instead of predicting redundantly. done flips to
// true (under the once) when the fields below it are final, so the hit
// path can skip once.Do entirely — building the once closure would
// otherwise be the hit path's only heap allocation.
type planEntry struct {
	key  string
	elem *list.Element

	once    sync.Once
	done    atomic.Bool
	sel     Selection
	clamped Clamps
	derived any // PlanCacheConfig.Derive's payload, nil when unset
	err     error
}

// planShard is one lock stripe: a bounded LRU slice of the key space with
// its own counters. The counters are atomics so aggregate Stats() reads
// never take (or wait on) a shard mutex.
type planShard struct {
	mu      sync.Mutex // guards entries/lru, never held during prediction
	entries map[string]*planEntry
	lru     *list.List // of *planEntry, front = most recent

	hits, misses, evictions atomic.Uint64
}

// PlanCache memoizes online frequency selections for a fixed (target,
// frequency list, objective, threshold), keyed by the profiling run's
// quantized mean feature vector. Workloads of the same computational
// character — features within one quantization bucket — resolve to one
// cached Selection; the underlying sweep+selection runs once per bucket,
// guarded by a per-key singleflight. The key space is split across
// lock-striped shards (key hash → shard), so concurrent Selects on
// distinct applications contend only when their keys share a shard; each
// shard is independently LRU-bounded. The cache is safe for concurrent
// use, and all counters are atomic: Stats() never blocks the serve path.
type PlanCache struct {
	sweeper *Sweeper
	cfg     PlanCacheConfig
	sweep   SweepFunc
	prefix  string // arch + objective + threshold, shared by every key

	shards   []planShard
	mask     uint64 // len(shards)-1, shard count is a power of two
	shardCap int    // per-shard LRU bound, ceil(Capacity/Shards)

	keyPool sync.Pool // *keyWS
}

// keyWS is one in-flight key computation's scratch space: the unquantized
// feature vector and the grow-only key byte buffer. Pooling it (and looking
// entries up by the byte form of the key) makes the hit path free of heap
// allocations; only a miss materializes the key as a string.
type keyWS struct {
	base []float64
	buf  []byte
}

// NewPlanCache builds a plan cache over a sweeper.
func NewPlanCache(s *Sweeper, cfg PlanCacheConfig) (*PlanCache, error) {
	if s == nil {
		return nil, errors.New("core: plan cache needs a sweeper")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// A grid sweeper's key prefix carries its memory-clock list: two caches
	// over the same target but different mem axes memoize different plans.
	// A core-only sweeper (nil mem list) contributes nothing here, keeping
	// its keys byte-identical to the historical 1-D formulation.
	prefix := s.target.Name + "|" + cfg.Objective.Name() + "|" + strconv.FormatFloat(cfg.Threshold, 'g', -1, 64) + "|"
	if mf := s.MemFreqs(); mf != nil {
		prefix += "mem"
		for _, m := range mf {
			prefix += ":" + strconv.FormatFloat(m, 'g', -1, 64)
		}
		prefix += "|"
	}
	c := &PlanCache{
		sweeper:  s,
		cfg:      cfg,
		sweep:    cfg.Sweep,
		prefix:   prefix,
		shards:   make([]planShard, cfg.Shards),
		mask:     uint64(cfg.Shards - 1),
		shardCap: (cfg.Capacity + cfg.Shards - 1) / cfg.Shards,
	}
	if c.sweep == nil {
		c.sweep = func(_ context.Context, dst []objective.Profile, maxRun dcgm.Run) (Clamps, error) {
			return s.PredictProfileInto(dst, maxRun)
		}
	}
	for i := range c.shards {
		c.shards[i].entries = map[string]*planEntry{}
		c.shards[i].lru = list.New()
	}
	nf := len(s.models.Features)
	c.keyPool.New = func() any {
		return &keyWS{
			base: make([]float64, nf),
			buf:  make([]byte, 0, len(c.prefix)+16*nf),
		}
	}
	return c, nil
}

// quantizeFeature maps a feature value to its bucket index under quantum q.
// Buckets are half-open [k·q, (k+1)·q): values that differ by more than q
// (beyond float-division rounding slop) can never share a bucket, while a
// ±1 ulp perturbation can only change the bucket when the value sits at a
// bucket boundary. Non-finite and out-of-range values collapse to sentinel
// buckets so a pathological sample cannot produce an unbounded key space.
func quantizeFeature(v, q float64) int64 {
	r := math.Floor(v / q)
	switch {
	case math.IsNaN(r):
		return math.MinInt64
	case r > 1e18:
		return math.MaxInt64
	case r < -1e18:
		return math.MinInt64 + 1
	}
	return int64(r)
}

// Quantize maps a feature value to its bucket index under quantum q — the
// plan-key quantizer exported for fingerprint schemes that must bucket
// exactly like plan keys (the governor's phase cache), so one quantization
// discipline governs every memoization layer: values that differ by more
// than q never share a bucket, a ±1 ulp perturbation moves the bucket by
// at most one, and pathological inputs collapse to sentinel buckets.
func Quantize(v, q float64) int64 { return quantizeFeature(v, q) }

// appendKey writes the cache key for a profiling run's mean sample — the
// shared (arch, objective, threshold) prefix plus the quantized feature
// vector — into ws.buf and returns it. The byte form is what the hot path
// hashes and looks up; only a miss copies it into an immutable string.
func (c *PlanCache) appendKey(ws *keyWS, mean dcgm.Sample) ([]byte, error) {
	m := c.sweeper.models
	if err := dataset.FeatureVectorInto(ws.base, m.Features, mean, c.sweeper.target.MaxFreqMHz, c.sweeper.target.MaxFreqMHz); err != nil {
		return nil, err
	}
	buf := append(ws.buf[:0], c.prefix...)
	for _, v := range ws.base {
		buf = strconv.AppendInt(buf, quantizeFeature(v, c.cfg.Quantum), 36)
		buf = append(buf, ',')
	}
	ws.buf = buf // keep any growth for the next caller
	return buf, nil
}

// keyFor is the allocating convenience form of appendKey (tests, Clamped).
func (c *PlanCache) keyFor(mean dcgm.Sample) (string, error) {
	ws := c.keyPool.Get().(*keyWS)
	defer c.keyPool.Put(ws)
	key, err := c.appendKey(ws, mean)
	if err != nil {
		return "", err
	}
	return string(key), nil
}

// KeyHash is the FNV-1a 64 hash the plan cache stripes its key space
// with, exported so key-affine layers above the cache (the scale-out
// router's consistent-hash ring) place work with the same function the
// shards use — one hash family from the router ring down to the lock
// stripe. It allocates nothing.
func KeyHash(key []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// shardFor hashes a key onto its lock stripe. The quantized feature
// digits at the key's tail carry the workload identity, so same-prefix
// keys still spread across shards.
func (c *PlanCache) shardFor(key []byte) *planShard {
	return &c.shards[KeyHash(key)&c.mask]
}

// Select returns the frequency selection for a profiling run, serving
// repeated queries for same-character workloads from the cache. hit
// reports whether the selection was memoized. The returned Selection on a
// hit is identical to the one the original computation produced.
func (c *PlanCache) Select(maxRun dcgm.Run) (sel Selection, hit bool, err error) {
	return c.SelectCtx(context.Background(), maxRun)
}

// SelectCtx is Select with a context that is handed to the cache's sweep
// function on a miss. A batched sweep uses it to abandon a request that
// is still queued; callers that lose the per-key singleflight race wait
// for the winning computation regardless (its duration is bounded by one
// sweep plus the batcher's max wait).
func (c *PlanCache) SelectCtx(ctx context.Context, maxRun dcgm.Run) (sel Selection, hit bool, err error) {
	sel, _, hit, err = c.selectEntry(ctx, maxRun)
	return sel, hit, err
}

// SelectDerived is Select extended with the Derive payload memoized for the
// run's bucket: whatever PlanCacheConfig.Derive returned when the bucket was
// first computed (nil when Derive is unset). An online planner calls this on
// every arrival and gets its precomputed per-bucket structure back on hits
// without touching the profiles.
func (c *PlanCache) SelectDerived(maxRun dcgm.Run) (sel Selection, derived any, hit bool, err error) {
	return c.selectEntry(context.Background(), maxRun)
}

// SelectDerivedCtx is SelectDerived with a context for the miss path.
func (c *PlanCache) SelectDerivedCtx(ctx context.Context, maxRun dcgm.Run) (sel Selection, derived any, hit bool, err error) {
	return c.selectEntry(ctx, maxRun)
}

func (c *PlanCache) selectEntry(ctx context.Context, maxRun dcgm.Run) (sel Selection, derived any, hit bool, err error) {
	if err := c.sweeper.validateRun(maxRun); err != nil {
		return Selection{}, nil, false, err
	}
	ws := c.keyPool.Get().(*keyWS)
	kb, err := c.appendKey(ws, maxRun.MeanSample())
	if err != nil {
		c.keyPool.Put(ws)
		return Selection{}, nil, false, err
	}

	sh := c.shardFor(kb)
	sh.mu.Lock()
	// The map index expression over string(kb) does not allocate: the
	// compiler looks the byte slice up directly. Only a miss pays for the
	// string conversion.
	e, hit := sh.entries[string(kb)]
	if hit {
		sh.lru.MoveToFront(e.elem)
		sh.hits.Add(1)
	} else {
		e = &planEntry{key: string(kb)}
		e.elem = sh.lru.PushFront(e)
		sh.entries[e.key] = e
		sh.misses.Add(1)
		for sh.lru.Len() > c.shardCap {
			back := sh.lru.Back()
			old := back.Value.(*planEntry)
			sh.lru.Remove(back)
			delete(sh.entries, old.key)
			sh.evictions.Add(1)
		}
	}
	sh.mu.Unlock()
	c.keyPool.Put(ws)

	// done is only stored (under the once) after every entry field is
	// final, so a true load proves the fields are readable without entering
	// once.Do — whose closure would be the hit path's only allocation.
	if !e.done.Load() {
		e.once.Do(func() {
			defer e.done.Store(true)
			profiles := make([]objective.Profile, c.sweeper.GridSize())
			clamped, perr := c.sweep(ctx, profiles, maxRun)
			if perr != nil {
				e.err = perr
				return
			}
			e.clamped = clamped
			e.sel, e.err = SelectFrequency(profiles, c.cfg.Objective, c.cfg.Threshold)
			if e.err == nil && c.cfg.Derive != nil {
				e.derived = c.cfg.Derive(profiles, e.sel)
			}
		})
	}
	if e.err != nil {
		// Drop the failed entry so a transient error (including an
		// overloaded or canceled batched sweep) does not poison the bucket
		// for later callers.
		sh.mu.Lock()
		if cur, ok := sh.entries[e.key]; ok && cur == e {
			sh.lru.Remove(e.elem)
			delete(sh.entries, e.key)
		}
		sh.mu.Unlock()
		return Selection{}, nil, false, e.err
	}
	return e.sel, e.derived, hit, nil
}

// Clamped returns the per-axis clamp counts recorded when the given run's
// bucket was computed, and whether that bucket is currently cached.
func (c *PlanCache) Clamped(maxRun dcgm.Run) (Clamps, bool) {
	key, err := c.keyFor(maxRun.MeanSample())
	if err != nil {
		return Clamps{}, false
	}
	sh := c.shardFor([]byte(key))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		return e.clamped, true
	}
	return Clamps{}, false
}

// Stats returns a snapshot of the aggregate cache counters. It reads only
// atomics — no shard mutex is taken — so a Stats poller can never block
// (or be blocked by) the serve path.
func (c *PlanCache) Stats() PlanCacheStats {
	var s PlanCacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Evictions += sh.evictions.Load()
	}
	return s
}

// ShardStats returns one counter snapshot per shard, in shard order —
// visibility into key-space skew across the lock stripes.
func (c *PlanCache) ShardStats() []PlanCacheStats {
	out := make([]PlanCacheStats, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		out[i] = PlanCacheStats{Hits: sh.hits.Load(), Misses: sh.misses.Load(), Evictions: sh.evictions.Load()}
	}
	return out
}

// Shards returns the cache's shard count (after power-of-two rounding).
func (c *PlanCache) Shards() int { return len(c.shards) }

// Len returns the number of memoized selections across all shards.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}
