package core

// Clamps counts safety-floor clamp events in a design-space sweep, split
// by axis: Core counts clamps on grid points at the default memory
// P-state (every point of a 1-D core-frequency sweep), Mem counts clamps
// on points pinned to an off-default memory clock. A non-zero Mem with a
// clean Core is the signature of a model extrapolating badly along the
// memory axis specifically — e.g. one trained without mem_app_clock data.
type Clamps struct {
	Core int
	Mem  int
}

// Total returns the combined clamp count across both axes — the single
// number the 1-D pipeline always reported.
func (c Clamps) Total() int { return c.Core + c.Mem }

// Add accumulates another count into c.
func (c *Clamps) Add(o Clamps) {
	c.Core += o.Core
	c.Mem += o.Mem
}
