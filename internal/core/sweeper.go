package core

import (
	"errors"
	"fmt"
	"sync"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/mat"
	"gpudvfs/internal/objective"
)

// Sweeper is the serving-grade form of the online phase for one
// (target architecture, frequency list) pair. It pre-resolves everything
// that does not depend on the profiling run — the clock-feature column
// (freq/maxFreq per sweep row), the clock column's index, and per-call
// workspaces behind a sync.Pool — so each PredictProfileInto call reduces
// to: fill the mean-sample feature columns, scale the sweep matrix in
// place, run two pooled batch inferences, and write profiles into the
// caller's buffer. At steady state the whole call performs zero heap
// allocations, and every value it produces is bit-identical to
// Models.PredictProfile's original build-everything-per-call formulation.
//
// A Sweeper is safe for concurrent use: each in-flight call owns one
// pooled workspace, and the underlying nn.Predictor pool provides the same
// guarantee for the forward passes.
type Sweeper struct {
	models    *Models
	target    backend.Arch
	freqs     []float64
	clockIdx  int       // index of sm_app_clock in the feature layout, -1 if absent
	clockVals []float64 // freqs[i]/target.MaxFreqMHz, precomputed
	pool      sync.Pool // *sweepWS
}

// sweepWS is one in-flight call's workspace.
type sweepWS struct {
	base []float64   // feature vector of the mean sample at max clock
	x    *mat.Matrix // len(freqs) × len(features) sweep matrix
	rows [][]float64 // row views into x, for the in-place scaler
	pP   *mat.Matrix // power predictions, len(freqs) × 1
	tP   *mat.Matrix // time predictions, len(freqs) × 1
}

// NewSweeper builds a sweeper for predicting m's profiles on target across
// freqs. The feature layout and model shapes are validated once here so
// the per-call path cannot fail on them.
func (m *Models) NewSweeper(target backend.Arch, freqs []float64) (*Sweeper, error) {
	if m.Power == nil || m.Time == nil {
		return nil, errors.New("core: sweeper needs trained power and time models")
	}
	if target.MaxFreqMHz <= 0 {
		return nil, fmt.Errorf("core: target %q has non-positive max clock %v", target.Name, target.MaxFreqMHz)
	}
	if err := m.CheckDVFS(target); err != nil {
		return nil, err
	}
	// Resolve the feature layout once; FeatureVectorInto can only fail on
	// unknown names, so surfacing that here keeps the hot path error-free.
	if err := dataset.FeatureVectorInto(make([]float64, len(m.Features)), m.Features, dcgm.Sample{}, target.MaxFreqMHz, target.MaxFreqMHz); err != nil {
		return nil, err
	}
	s := &Sweeper{
		models:    m,
		target:    target,
		freqs:     append([]float64(nil), freqs...),
		clockIdx:  -1,
		clockVals: make([]float64, len(freqs)),
	}
	for i, name := range m.Features {
		if name == "sm_app_clock" {
			s.clockIdx = i
			break
		}
	}
	for i, f := range freqs {
		// The same expression FeatureVector uses, so the filled rows are
		// bit-identical to the per-frequency rebuild.
		s.clockVals[i] = f / target.MaxFreqMHz
	}
	nf := len(m.Features)
	s.pool.New = func() any {
		ws := &sweepWS{
			base: make([]float64, nf),
			x:    mat.New(len(s.freqs), nf),
			rows: make([][]float64, len(s.freqs)),
			pP:   mat.New(len(s.freqs), 1),
			tP:   mat.New(len(s.freqs), 1),
		}
		for i := range ws.rows {
			ws.rows[i] = ws.x.Row(i)
		}
		return ws
	}
	return s, nil
}

// Freqs returns the sweep's frequency list (not a copy; callers must not
// modify it).
func (s *Sweeper) Freqs() []float64 { return s.freqs }

// Target returns the architecture the sweeper predicts for.
func (s *Sweeper) Target() backend.Arch { return s.target }

// matches reports whether the sweeper was built for exactly this target
// and frequency list (the fields prediction depends on).
func (s *Sweeper) matches(target backend.Arch, freqs []float64) bool {
	if s.target.Name != target.Name || s.target.MaxFreqMHz != target.MaxFreqMHz || s.target.TDPWatts != target.TDPWatts {
		return false
	}
	if len(s.freqs) != len(freqs) {
		return false
	}
	for i, f := range freqs {
		if s.freqs[i] != f {
			return false
		}
	}
	return true
}

// validateRun applies the online phase's profiling-run preconditions, with
// the same error messages PredictProfile always produced.
func (s *Sweeper) validateRun(maxRun dcgm.Run) error {
	if len(maxRun.Samples) == 0 {
		return errors.New("core: profiling run has no samples")
	}
	if maxRun.FreqMHz != s.target.MaxFreqMHz {
		return fmt.Errorf("core: profiling run was at %v MHz, want the maximum clock %v MHz", maxRun.FreqMHz, s.target.MaxFreqMHz)
	}
	if maxRun.ExecTimeSec <= 0 {
		return fmt.Errorf("core: profiling run has non-positive exec time %v", maxRun.ExecTimeSec)
	}
	return nil
}

// PredictProfileInto runs the online phase for one profiling run, writing
// one predicted profile per sweep frequency into dst (which must have
// len(Freqs()) entries). It returns how many predictions had to be clamped
// to the power/slowdown floors — a signal that the models are undertrained
// for this workload, surfaced instead of silently masked.
//
// Zero heap allocations at steady state; bit-identical to
// Models.PredictProfile.
func (s *Sweeper) PredictProfileInto(dst []objective.Profile, maxRun dcgm.Run) (clamped int, err error) {
	if err := s.validateRun(maxRun); err != nil {
		return 0, err
	}
	if len(dst) != len(s.freqs) {
		return 0, fmt.Errorf("core: profile buffer has %d entries, sweep has %d frequencies", len(dst), len(s.freqs))
	}
	m := s.models
	mean := maxRun.MeanSample()
	ws := s.pool.Get().(*sweepWS)
	defer s.pool.Put(ws)

	// Fill the mean-sample feature columns once and broadcast them to every
	// sweep row; only the clock column varies. The values are the exact
	// floats the per-frequency FeatureVector rebuild produced.
	if err := dataset.FeatureVectorInto(ws.base, m.Features, mean, s.target.MaxFreqMHz, s.target.MaxFreqMHz); err != nil {
		return 0, err
	}
	for i := range s.freqs {
		row := ws.x.Row(i)
		copy(row, ws.base)
		if s.clockIdx >= 0 {
			row[s.clockIdx] = s.clockVals[i]
		}
	}
	if m.Scaler != nil {
		if err := m.Scaler.TransformInto(ws.rows, ws.rows); err != nil {
			return 0, fmt.Errorf("core: scaling features: %w", err)
		}
	}
	if err := m.Power.Predictor().PredictMatInto(ws.pP, ws.x); err != nil {
		return 0, fmt.Errorf("core: power prediction: %w", err)
	}
	if err := m.Time.Predictor().PredictMatInto(ws.tP, ws.x); err != nil {
		return 0, fmt.Errorf("core: time prediction: %w", err)
	}
	for i, f := range s.freqs {
		power := ws.pP.At(i, 0) * s.target.TDPWatts
		slow := ws.tP.At(i, 0)
		// Floor pathological predictions at 1 W / 1e-6 slowdown so
		// downstream EDP math stays well defined even for badly
		// undertrained models — but count every clamp so they are visible.
		if power < 1 {
			power = 1
			clamped++
		}
		if slow < 1e-6 {
			slow = 1e-6
			clamped++
		}
		dst[i] = objective.Profile{
			FreqMHz:    f,
			PowerWatts: power,
			TimeSec:    maxRun.ExecTimeSec * slow,
		}
	}
	return clamped, nil
}

// PredictProfile is the allocating convenience form of PredictProfileInto.
func (s *Sweeper) PredictProfile(maxRun dcgm.Run) ([]objective.Profile, int, error) {
	out := make([]objective.Profile, len(s.freqs))
	clamped, err := s.PredictProfileInto(out, maxRun)
	if err != nil {
		return nil, 0, err
	}
	return out, clamped, nil
}

// sweeperFor returns a memoized sweeper for (target, freqs), rebuilding
// only when the target identity or frequency list changes. One slot per
// architecture name: the common serving pattern is a stable design-space
// sweep per target.
func (m *Models) sweeperFor(target backend.Arch, freqs []float64) (*Sweeper, error) {
	m.swMu.Lock()
	defer m.swMu.Unlock()
	if sw := m.sweepers[target.Name]; sw != nil && sw.matches(target, freqs) {
		return sw, nil
	}
	sw, err := m.NewSweeper(target, freqs)
	if err != nil {
		return nil, err
	}
	if m.sweepers == nil {
		m.sweepers = map[string]*Sweeper{}
	}
	m.sweepers[target.Name] = sw
	return sw, nil
}
