package core

import (
	"errors"
	"fmt"
	"sync"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/mat"
	"gpudvfs/internal/objective"
)

// Sweeper is the serving-grade form of the online phase for one
// (target architecture, core-frequency list, memory-clock list) triple.
// With a memory axis the design space is the (core × mem) grid, laid out
// memory-outer: grid point g predicts core clock freqs[g%len(freqs)] at
// memory clock memFreqs[g/len(freqs)]. Without one (memFreqs nil) the
// sweeper is exactly the historical 1-D core-frequency sweep,
// bit-identical output included.
//
// Everything that does not depend on the profiling run is pre-resolved at
// construction: the clock and mem-clock feature column indices, their
// per-grid-point values *after scaling* (the static plane), and per-call
// workspaces behind a sync.Pool whose sweep matrices carry the static
// columns pre-staged. Each PredictProfileInto call therefore only scales
// the mean-sample features once (one row through the scaler, not one per
// grid point), broadcasts them into the dynamic columns, and runs two
// pooled batch inferences. At steady state the whole call performs zero
// heap allocations.
//
// Pre-scaling the static plane relies on the stats.Scaler contract that
// scaling is element-wise per column (each output element depends only on
// its own input element and the fitted column parameters), which both
// shipped scalers satisfy; that is what makes the staged columns
// bit-identical to scaling every full row per call. The scaler is bound
// at construction — retraining models invalidates existing sweepers.
//
// A Sweeper is safe for concurrent use: each in-flight call owns one
// pooled workspace, and the underlying nn.Predictor pool provides the same
// guarantee for the forward passes.
type Sweeper struct {
	models   *Models
	target   backend.Arch
	freqs    []float64
	memFreqs []float64 // nil: 1-D core-only sweep
	defMem   float64   // default memory P-state, 0 when target has no memory axis
	nGrid    int       // len(freqs) × max(1, len(memFreqs))

	clockIdx int // index of sm_app_clock in the feature layout, -1 if absent
	memIdx   int // index of mem_app_clock, -1 if absent
	dynIdx   []int
	// The static plane: feature-column values that depend only on the grid
	// point, already scaled. scaledClock is indexed by core-frequency
	// index, scaledMem by memory-clock index (one entry meaning "default
	// state" when there is no memory axis).
	scaledClock []float64
	scaledMem   []float64

	pool      sync.Pool // *sweepWS
	batchPool sync.Pool // *batchWS, grow-only over batch size
}

// sweepWS is one in-flight call's workspace. The sweep matrix x has the
// static clock/mem columns staged at workspace birth; calls write only
// the dynamic columns.
type sweepWS struct {
	base    []float64   // feature vector of the mean sample at max clock
	baseRow [][]float64 // one-row view of base, for the in-place scaler
	x       *mat.Matrix // nGrid × len(features) sweep matrix
	pP      *mat.Matrix // power predictions, nGrid × 1
	tP      *mat.Matrix // time predictions, nGrid × 1
}

// batchWS is one in-flight fused-batch call's workspace: the stacked
// (B·nGrid) × len(features) sweep matrix and its prediction columns. All
// buffers are grow-only, so a workspace that has served the largest batch
// once serves every later batch without allocating. stagedRows tracks how
// many leading rows of x carry valid static columns, so statics are
// re-staged only when the backing array is reallocated or the batch
// grows past everything staged before.
type batchWS struct {
	base       []float64
	baseRow    [][]float64
	x          *mat.Matrix
	pP         *mat.Matrix
	tP         *mat.Matrix
	stagedRows int
}

// reshapeMat resizes *m to rows×cols, reusing its backing array when it is
// large enough (the same grow-only contract nn's workspaces use). grew
// reports whether a fresh backing array was allocated.
func reshapeMat(m **mat.Matrix, rows, cols int) (_ *mat.Matrix, grew bool) {
	if *m == nil || cap((*m).Data) < rows*cols {
		*m = mat.New(rows, cols)
		return *m, true
	}
	(*m).Rows, (*m).Cols = rows, cols
	(*m).Data = (*m).Data[:rows*cols]
	return *m, false
}

// NewSweeper builds a 1-D sweeper for predicting m's profiles on target
// across freqs — NewGridSweeper without a memory axis.
func (m *Models) NewSweeper(target backend.Arch, freqs []float64) (*Sweeper, error) {
	return m.NewGridSweeper(target, freqs, nil)
}

// NewGridSweeper builds a sweeper over the (freqs × memFreqs) design grid
// on target. memFreqs nil selects the historical 1-D core-only sweep;
// non-nil entries must be memory P-states the target supports. The
// feature layout, model shapes, and the static plane are resolved once
// here so the per-call path cannot fail on them.
func (m *Models) NewGridSweeper(target backend.Arch, freqs, memFreqs []float64) (*Sweeper, error) {
	if m.Power == nil || m.Time == nil {
		return nil, errors.New("core: sweeper needs trained power and time models")
	}
	if target.MaxFreqMHz <= 0 {
		return nil, fmt.Errorf("core: target %q has non-positive max clock %v", target.Name, target.MaxFreqMHz)
	}
	if err := m.CheckDVFS(target); err != nil {
		return nil, err
	}
	defMem := target.DefaultMemClock()
	if memFreqs != nil {
		if len(memFreqs) == 0 {
			return nil, errors.New("core: empty memory-clock list (use nil for a core-only sweep)")
		}
		if defMem <= 0 {
			return nil, fmt.Errorf("core: target %q has no memory axis", target.Name)
		}
		for _, f := range memFreqs {
			if !target.IsSupportedMemClock(f) {
				return nil, fmt.Errorf("core: target %q does not support memory clock %v MHz (have %v)", target.Name, f, target.MemClocks())
			}
		}
	}
	// Resolve the feature layout once; FeatureVectorInto can only fail on
	// unknown names, so surfacing that here keeps the hot path error-free.
	if err := dataset.FeatureVectorInto(make([]float64, len(m.Features)), m.Features, dcgm.Sample{}, target.MaxFreqMHz, target.MaxFreqMHz); err != nil {
		return nil, err
	}
	s := &Sweeper{
		models:   m,
		target:   target,
		freqs:    append([]float64(nil), freqs...),
		memFreqs: append([]float64(nil), memFreqs...),
		defMem:   defMem,
		nGrid:    len(freqs),
		clockIdx: -1,
		memIdx:   -1,
	}
	if memFreqs != nil {
		s.nGrid = len(freqs) * len(memFreqs)
	} else {
		s.memFreqs = nil // preserve nil-ness through the copy
	}
	for i, name := range m.Features {
		switch {
		case name == "sm_app_clock" && s.clockIdx < 0:
			s.clockIdx = i
		case name == dataset.MemFeature && s.memIdx < 0:
			s.memIdx = i
		default:
			// Duplicate clock-feature occurrences ride the dynamic path:
			// their base value (the scaled default-state ratio) is what the
			// historical full-row rebuild put there too.
			s.dynIdx = append(s.dynIdx, i)
		}
	}

	// Build the static plane: the per-grid-point clock and mem values, as
	// FeatureVector(Grid)Into computes them, pushed through the scaler once.
	clockVals := make([]float64, len(s.freqs))
	for i, f := range s.freqs {
		clockVals[i] = f / target.MaxFreqMHz
	}
	memVals := []float64{dataset.MemRatio(0, defMem)} // the default state: exactly 1
	if s.memFreqs != nil {
		memVals = make([]float64, len(s.memFreqs))
		for i, f := range s.memFreqs {
			memVals[i] = dataset.MemRatio(f, defMem)
		}
	}
	var err error
	if s.scaledClock, err = m.scaleColumn(s.clockIdx, clockVals); err != nil {
		return nil, fmt.Errorf("core: scaling clock plane: %w", err)
	}
	if s.scaledMem, err = m.scaleColumn(s.memIdx, memVals); err != nil {
		return nil, fmt.Errorf("core: scaling mem plane: %w", err)
	}

	nf := len(m.Features)
	s.pool.New = func() any {
		ws := &sweepWS{
			base: make([]float64, nf),
			x:    mat.New(s.nGrid, nf),
			pP:   mat.New(s.nGrid, 1),
			tP:   mat.New(s.nGrid, 1),
		}
		ws.baseRow = [][]float64{ws.base}
		s.stageStatic(ws.x, 0, s.nGrid)
		return ws
	}
	s.batchPool.New = func() any {
		ws := &batchWS{base: make([]float64, nf)}
		ws.baseRow = [][]float64{ws.base}
		return ws
	}
	return s, nil
}

// scaleColumn pushes per-grid-point values for feature column j through
// the models' scaler, one value at a time in an otherwise-zero row, and
// returns the scaled values. Column independence of the scaler makes the
// surrounding zeros irrelevant. A nil scaler or absent column (j < 0)
// returns the values unchanged.
func (m *Models) scaleColumn(j int, vals []float64) ([]float64, error) {
	out := append([]float64(nil), vals...)
	if m.Scaler == nil || j < 0 {
		return out, nil
	}
	row := make([]float64, len(m.Features))
	rows := [][]float64{row}
	for i, v := range vals {
		for k := range row {
			row[k] = 0
		}
		row[j] = v
		if err := m.Scaler.TransformInto(rows, rows); err != nil {
			return nil, err
		}
		out[i] = row[j]
	}
	return out, nil
}

// stageStatic writes the pre-scaled static clock/mem columns into rows
// [lo, hi) of a (stacked) sweep matrix. Row r corresponds to grid point
// r%nGrid; the grid is memory-outer, core-inner.
func (s *Sweeper) stageStatic(x *mat.Matrix, lo, hi int) {
	nF := len(s.freqs)
	for r := lo; r < hi; r++ {
		row := x.Row(r)
		g := r % s.nGrid
		if s.clockIdx >= 0 {
			row[s.clockIdx] = s.scaledClock[g%nF]
		}
		if s.memIdx >= 0 {
			row[s.memIdx] = s.scaledMem[g/nF]
		}
	}
}

// fillDynamic broadcasts the scaled mean-sample features into the dynamic
// columns of rows [off, off+nGrid) of a sweep matrix whose static columns
// are already staged.
func (s *Sweeper) fillDynamic(x *mat.Matrix, off int, scaledBase []float64) {
	for g := 0; g < s.nGrid; g++ {
		row := x.Row(off + g)
		for _, j := range s.dynIdx {
			row[j] = scaledBase[j]
		}
	}
}

// scaleBase builds the profiling run's feature vector into base and
// scales it in place through baseRow — one row through the scaler per
// call, regardless of grid size.
func (s *Sweeper) scaleBase(base []float64, baseRow [][]float64, mean dcgm.Sample) error {
	m := s.models
	if err := dataset.FeatureVectorInto(base, m.Features, mean, s.target.MaxFreqMHz, s.target.MaxFreqMHz); err != nil {
		return err
	}
	if m.Scaler != nil {
		if err := m.Scaler.TransformInto(baseRow, baseRow); err != nil {
			return fmt.Errorf("core: scaling features: %w", err)
		}
	}
	return nil
}

// compose turns prediction rows [off, off+nGrid) into profiles,
// accumulating clamp counts per axis: grid points at an off-default
// memory clock count as Mem, everything else as Core.
func (s *Sweeper) compose(dst []objective.Profile, cl *Clamps, pP, tP *mat.Matrix, off int, execTimeSec float64) {
	nF := len(s.freqs)
	for g := 0; g < s.nGrid; g++ {
		power := pP.At(off+g, 0) * s.target.TDPWatts
		slow := tP.At(off+g, 0)
		// Floor pathological predictions at 1 W / 1e-6 slowdown so
		// downstream EDP math stays well defined even for badly
		// undertrained models — but count every clamp so they are visible.
		mem := 0.0
		onMem := false
		if s.memFreqs != nil {
			mem = s.memFreqs[g/nF]
			onMem = mem != s.defMem
		}
		if power < 1 {
			power = 1
			if onMem {
				cl.Mem++
			} else {
				cl.Core++
			}
		}
		if slow < 1e-6 {
			slow = 1e-6
			if onMem {
				cl.Mem++
			} else {
				cl.Core++
			}
		}
		dst[g] = objective.Profile{
			FreqMHz:    s.freqs[g%nF],
			MemFreqMHz: mem,
			PowerWatts: power,
			TimeSec:    execTimeSec * slow,
		}
	}
}

// Freqs returns the sweep's core-frequency list (not a copy; callers must
// not modify it).
func (s *Sweeper) Freqs() []float64 { return s.freqs }

// MemFreqs returns the sweep's memory-clock list, nil for a 1-D core-only
// sweep (not a copy; callers must not modify it).
func (s *Sweeper) MemFreqs() []float64 { return s.memFreqs }

// GridSize returns the number of design points one sweep predicts:
// len(Freqs()) × max(1, len(MemFreqs())) — the buffer length
// PredictProfileInto requires.
func (s *Sweeper) GridSize() int { return s.nGrid }

// Target returns the architecture the sweeper predicts for.
func (s *Sweeper) Target() backend.Arch { return s.target }

// matches reports whether the sweeper was built for exactly this target,
// frequency list, and memory-clock list (the fields prediction depends on).
func (s *Sweeper) matches(target backend.Arch, freqs, memFreqs []float64) bool {
	if s.target.Name != target.Name || s.target.MaxFreqMHz != target.MaxFreqMHz || s.target.TDPWatts != target.TDPWatts {
		return false
	}
	if len(s.freqs) != len(freqs) || (s.memFreqs == nil) != (memFreqs == nil) || len(s.memFreqs) != len(memFreqs) {
		return false
	}
	for i, f := range freqs {
		if s.freqs[i] != f {
			return false
		}
	}
	for i, f := range memFreqs {
		if s.memFreqs[i] != f {
			return false
		}
	}
	return true
}

// validateRun applies the online phase's profiling-run preconditions, with
// the same error messages PredictProfile always produced. Profiling must
// happen at the maximum core clock and the default memory P-state — the
// grid corner every other design point is extrapolated from.
func (s *Sweeper) validateRun(maxRun dcgm.Run) error {
	if len(maxRun.Samples) == 0 {
		return errors.New("core: profiling run has no samples")
	}
	if maxRun.FreqMHz != s.target.MaxFreqMHz {
		return fmt.Errorf("core: profiling run was at %v MHz, want the maximum clock %v MHz", maxRun.FreqMHz, s.target.MaxFreqMHz)
	}
	if maxRun.MemFreqMHz != 0 && maxRun.MemFreqMHz != s.defMem {
		return fmt.Errorf("core: profiling run was at memory clock %v MHz, want the default P-state %v MHz", maxRun.MemFreqMHz, s.defMem)
	}
	if maxRun.ExecTimeSec <= 0 {
		return fmt.Errorf("core: profiling run has non-positive exec time %v", maxRun.ExecTimeSec)
	}
	return nil
}

// PredictProfileInto runs the online phase for one profiling run, writing
// one predicted profile per design point into dst (which must have
// GridSize() entries; grid point g is core clock Freqs()[g%len(Freqs())]
// at memory clock MemFreqs()[g/len(Freqs())]). It returns how many
// predictions had to be clamped to the power/slowdown floors, split by
// axis — a signal that the models are undertrained for this workload,
// surfaced instead of silently masked.
//
// Zero heap allocations at steady state; without a memory axis,
// bit-identical to Models.PredictProfile's historical 1-D output.
func (s *Sweeper) PredictProfileInto(dst []objective.Profile, maxRun dcgm.Run) (Clamps, error) {
	var cl Clamps
	if err := s.validateRun(maxRun); err != nil {
		return cl, err
	}
	if len(dst) != s.nGrid {
		return cl, fmt.Errorf("core: profile buffer has %d entries, sweep has %d design points", len(dst), s.nGrid)
	}
	m := s.models
	mean := maxRun.MeanSample()
	ws := s.pool.Get().(*sweepWS)
	defer s.pool.Put(ws)

	if err := s.scaleBase(ws.base, ws.baseRow, mean); err != nil {
		return cl, err
	}
	s.fillDynamic(ws.x, 0, ws.base)
	if err := m.Power.Predictor().PredictMatInto(ws.pP, ws.x); err != nil {
		return cl, fmt.Errorf("core: power prediction: %w", err)
	}
	if err := m.Time.Predictor().PredictMatInto(ws.tP, ws.x); err != nil {
		return cl, fmt.Errorf("core: time prediction: %w", err)
	}
	s.compose(dst, &cl, ws.pP, ws.tP, 0, maxRun.ExecTimeSec)
	return cl, nil
}

// ValidateRun applies the online phase's profiling-run preconditions
// without predicting anything. Serving layers use it to reject a bad
// request before it is queued, keeping the fused batch path error-free.
func (s *Sweeper) ValidateRun(maxRun dcgm.Run) error { return s.validateRun(maxRun) }

// PredictProfilesInto runs the online phase for a batch of profiling runs
// through ONE fused forward pass per model: the runs' sweep rows are
// stacked into a single (len(runs)·GridSize()) × features matrix and
// pushed through the power and time networks once, so the per-layer
// traversal cost is amortized across the whole batch. dsts[i] receives
// run i's profiles (each buffer must have GridSize() entries) and
// clamped[i] its per-axis safety-floor clamp counts.
//
// Every output value is bit-identical to calling PredictProfileInto once
// per run, at any batch size: the feature fill, the scaler, and the
// forward-pass kernels are all row-independent with an unchanged
// per-row summation order. Workspaces are pooled and grow-only (static
// columns re-staged only when the stacked matrix is reallocated or the
// batch outgrows what was staged), so steady-state batches of a stable
// size allocate nothing. Safe for concurrent use like PredictProfileInto.
func (s *Sweeper) PredictProfilesInto(dsts [][]objective.Profile, clamped []Clamps, runs []dcgm.Run) error {
	if len(dsts) != len(runs) || len(clamped) != len(runs) {
		return fmt.Errorf("core: batch sweep has %d runs but %d profile buffers and %d clamp slots", len(runs), len(dsts), len(clamped))
	}
	if len(runs) == 0 {
		return nil
	}
	for i, r := range runs {
		if err := s.validateRun(r); err != nil {
			return fmt.Errorf("core: batch run %d: %w", i, err)
		}
		if len(dsts[i]) != s.nGrid {
			return fmt.Errorf("core: batch profile buffer %d has %d entries, sweep has %d design points", i, len(dsts[i]), s.nGrid)
		}
	}
	m := s.models
	nf := len(m.Features)
	rows := len(runs) * s.nGrid
	ws := s.batchPool.Get().(*batchWS)
	defer s.batchPool.Put(ws)
	x, grew := reshapeMat(&ws.x, rows, nf)
	if grew {
		ws.stagedRows = 0
	}
	if ws.stagedRows < rows {
		s.stageStatic(x, ws.stagedRows, rows)
		ws.stagedRows = rows
	}

	for bi := range runs {
		if err := s.scaleBase(ws.base, ws.baseRow, runs[bi].MeanSample()); err != nil {
			return err
		}
		s.fillDynamic(x, bi*s.nGrid, ws.base)
	}
	pP, _ := reshapeMat(&ws.pP, rows, 1)
	tP, _ := reshapeMat(&ws.tP, rows, 1)
	if err := m.Power.Predictor().PredictMatInto(pP, x); err != nil {
		return fmt.Errorf("core: power prediction: %w", err)
	}
	if err := m.Time.Predictor().PredictMatInto(tP, x); err != nil {
		return fmt.Errorf("core: time prediction: %w", err)
	}
	for bi, run := range runs {
		var cl Clamps
		s.compose(dsts[bi], &cl, pP, tP, bi*s.nGrid, run.ExecTimeSec)
		clamped[bi] = cl
	}
	return nil
}

// PredictProfile is the allocating convenience form of PredictProfileInto.
func (s *Sweeper) PredictProfile(maxRun dcgm.Run) ([]objective.Profile, Clamps, error) {
	out := make([]objective.Profile, s.nGrid)
	clamped, err := s.PredictProfileInto(out, maxRun)
	if err != nil {
		return nil, Clamps{}, err
	}
	return out, clamped, nil
}

// SweeperFor returns the memoized serving sweeper for (target, freqs):
// every caller asking for the same target and frequency list shares one
// Sweeper (and therefore one workspace pool), which is the concurrency
// model the serving layer and multi-governor deployments rely on.
func (m *Models) SweeperFor(target backend.Arch, freqs []float64) (*Sweeper, error) {
	return m.sweeperFor(target, freqs, nil)
}

// GridSweeperFor is SweeperFor over the (core × mem) design grid.
func (m *Models) GridSweeperFor(target backend.Arch, freqs, memFreqs []float64) (*Sweeper, error) {
	return m.sweeperFor(target, freqs, memFreqs)
}

// sweeperFor returns a memoized sweeper for (target, freqs, memFreqs),
// rebuilding only when the target identity, frequency list, or memory
// axis changes. One slot per architecture name: the common serving
// pattern is a stable design-space sweep per target.
func (m *Models) sweeperFor(target backend.Arch, freqs, memFreqs []float64) (*Sweeper, error) {
	m.swMu.Lock()
	defer m.swMu.Unlock()
	if sw := m.sweepers[target.Name]; sw != nil && sw.matches(target, freqs, memFreqs) {
		return sw, nil
	}
	sw, err := m.NewGridSweeper(target, freqs, memFreqs)
	if err != nil {
		return nil, err
	}
	if m.sweepers == nil {
		m.sweepers = map[string]*Sweeper{}
	}
	m.sweepers[target.Name] = sw
	return sw, nil
}
