package core

import (
	"errors"
	"fmt"
	"sync"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/mat"
	"gpudvfs/internal/objective"
)

// Sweeper is the serving-grade form of the online phase for one
// (target architecture, frequency list) pair. It pre-resolves everything
// that does not depend on the profiling run — the clock-feature column
// (freq/maxFreq per sweep row), the clock column's index, and per-call
// workspaces behind a sync.Pool — so each PredictProfileInto call reduces
// to: fill the mean-sample feature columns, scale the sweep matrix in
// place, run two pooled batch inferences, and write profiles into the
// caller's buffer. At steady state the whole call performs zero heap
// allocations, and every value it produces is bit-identical to
// Models.PredictProfile's original build-everything-per-call formulation.
//
// A Sweeper is safe for concurrent use: each in-flight call owns one
// pooled workspace, and the underlying nn.Predictor pool provides the same
// guarantee for the forward passes.
type Sweeper struct {
	models    *Models
	target    backend.Arch
	freqs     []float64
	clockIdx  int       // index of sm_app_clock in the feature layout, -1 if absent
	clockVals []float64 // freqs[i]/target.MaxFreqMHz, precomputed
	pool      sync.Pool // *sweepWS
	batchPool sync.Pool // *batchWS, grow-only over batch size
}

// sweepWS is one in-flight call's workspace.
type sweepWS struct {
	base []float64   // feature vector of the mean sample at max clock
	x    *mat.Matrix // len(freqs) × len(features) sweep matrix
	rows [][]float64 // row views into x, for the in-place scaler
	pP   *mat.Matrix // power predictions, len(freqs) × 1
	tP   *mat.Matrix // time predictions, len(freqs) × 1
}

// batchWS is one in-flight fused-batch call's workspace: the stacked
// (B·len(freqs)) × len(features) sweep matrix and its prediction columns.
// All buffers are grow-only, so a workspace that has served the largest
// batch once serves every later batch without allocating.
type batchWS struct {
	base []float64
	x    *mat.Matrix
	rows [][]float64
	pP   *mat.Matrix
	tP   *mat.Matrix
}

// reshapeMat resizes *m to rows×cols, reusing its backing array when it is
// large enough (the same grow-only contract nn's workspaces use).
func reshapeMat(m **mat.Matrix, rows, cols int) *mat.Matrix {
	if *m == nil || cap((*m).Data) < rows*cols {
		*m = mat.New(rows, cols)
	} else {
		(*m).Rows, (*m).Cols = rows, cols
		(*m).Data = (*m).Data[:rows*cols]
	}
	return *m
}

// NewSweeper builds a sweeper for predicting m's profiles on target across
// freqs. The feature layout and model shapes are validated once here so
// the per-call path cannot fail on them.
func (m *Models) NewSweeper(target backend.Arch, freqs []float64) (*Sweeper, error) {
	if m.Power == nil || m.Time == nil {
		return nil, errors.New("core: sweeper needs trained power and time models")
	}
	if target.MaxFreqMHz <= 0 {
		return nil, fmt.Errorf("core: target %q has non-positive max clock %v", target.Name, target.MaxFreqMHz)
	}
	if err := m.CheckDVFS(target); err != nil {
		return nil, err
	}
	// Resolve the feature layout once; FeatureVectorInto can only fail on
	// unknown names, so surfacing that here keeps the hot path error-free.
	if err := dataset.FeatureVectorInto(make([]float64, len(m.Features)), m.Features, dcgm.Sample{}, target.MaxFreqMHz, target.MaxFreqMHz); err != nil {
		return nil, err
	}
	s := &Sweeper{
		models:    m,
		target:    target,
		freqs:     append([]float64(nil), freqs...),
		clockIdx:  -1,
		clockVals: make([]float64, len(freqs)),
	}
	for i, name := range m.Features {
		if name == "sm_app_clock" {
			s.clockIdx = i
			break
		}
	}
	for i, f := range freqs {
		// The same expression FeatureVector uses, so the filled rows are
		// bit-identical to the per-frequency rebuild.
		s.clockVals[i] = f / target.MaxFreqMHz
	}
	nf := len(m.Features)
	s.pool.New = func() any {
		ws := &sweepWS{
			base: make([]float64, nf),
			x:    mat.New(len(s.freqs), nf),
			rows: make([][]float64, len(s.freqs)),
			pP:   mat.New(len(s.freqs), 1),
			tP:   mat.New(len(s.freqs), 1),
		}
		for i := range ws.rows {
			ws.rows[i] = ws.x.Row(i)
		}
		return ws
	}
	s.batchPool.New = func() any { return &batchWS{} }
	return s, nil
}

// Freqs returns the sweep's frequency list (not a copy; callers must not
// modify it).
func (s *Sweeper) Freqs() []float64 { return s.freqs }

// Target returns the architecture the sweeper predicts for.
func (s *Sweeper) Target() backend.Arch { return s.target }

// matches reports whether the sweeper was built for exactly this target
// and frequency list (the fields prediction depends on).
func (s *Sweeper) matches(target backend.Arch, freqs []float64) bool {
	if s.target.Name != target.Name || s.target.MaxFreqMHz != target.MaxFreqMHz || s.target.TDPWatts != target.TDPWatts {
		return false
	}
	if len(s.freqs) != len(freqs) {
		return false
	}
	for i, f := range freqs {
		if s.freqs[i] != f {
			return false
		}
	}
	return true
}

// validateRun applies the online phase's profiling-run preconditions, with
// the same error messages PredictProfile always produced.
func (s *Sweeper) validateRun(maxRun dcgm.Run) error {
	if len(maxRun.Samples) == 0 {
		return errors.New("core: profiling run has no samples")
	}
	if maxRun.FreqMHz != s.target.MaxFreqMHz {
		return fmt.Errorf("core: profiling run was at %v MHz, want the maximum clock %v MHz", maxRun.FreqMHz, s.target.MaxFreqMHz)
	}
	if maxRun.ExecTimeSec <= 0 {
		return fmt.Errorf("core: profiling run has non-positive exec time %v", maxRun.ExecTimeSec)
	}
	return nil
}

// PredictProfileInto runs the online phase for one profiling run, writing
// one predicted profile per sweep frequency into dst (which must have
// len(Freqs()) entries). It returns how many predictions had to be clamped
// to the power/slowdown floors — a signal that the models are undertrained
// for this workload, surfaced instead of silently masked.
//
// Zero heap allocations at steady state; bit-identical to
// Models.PredictProfile.
func (s *Sweeper) PredictProfileInto(dst []objective.Profile, maxRun dcgm.Run) (clamped int, err error) {
	if err := s.validateRun(maxRun); err != nil {
		return 0, err
	}
	if len(dst) != len(s.freqs) {
		return 0, fmt.Errorf("core: profile buffer has %d entries, sweep has %d frequencies", len(dst), len(s.freqs))
	}
	m := s.models
	mean := maxRun.MeanSample()
	ws := s.pool.Get().(*sweepWS)
	defer s.pool.Put(ws)

	// Fill the mean-sample feature columns once and broadcast them to every
	// sweep row; only the clock column varies. The values are the exact
	// floats the per-frequency FeatureVector rebuild produced.
	if err := dataset.FeatureVectorInto(ws.base, m.Features, mean, s.target.MaxFreqMHz, s.target.MaxFreqMHz); err != nil {
		return 0, err
	}
	for i := range s.freqs {
		row := ws.x.Row(i)
		copy(row, ws.base)
		if s.clockIdx >= 0 {
			row[s.clockIdx] = s.clockVals[i]
		}
	}
	if m.Scaler != nil {
		if err := m.Scaler.TransformInto(ws.rows, ws.rows); err != nil {
			return 0, fmt.Errorf("core: scaling features: %w", err)
		}
	}
	if err := m.Power.Predictor().PredictMatInto(ws.pP, ws.x); err != nil {
		return 0, fmt.Errorf("core: power prediction: %w", err)
	}
	if err := m.Time.Predictor().PredictMatInto(ws.tP, ws.x); err != nil {
		return 0, fmt.Errorf("core: time prediction: %w", err)
	}
	for i, f := range s.freqs {
		power := ws.pP.At(i, 0) * s.target.TDPWatts
		slow := ws.tP.At(i, 0)
		// Floor pathological predictions at 1 W / 1e-6 slowdown so
		// downstream EDP math stays well defined even for badly
		// undertrained models — but count every clamp so they are visible.
		if power < 1 {
			power = 1
			clamped++
		}
		if slow < 1e-6 {
			slow = 1e-6
			clamped++
		}
		dst[i] = objective.Profile{
			FreqMHz:    f,
			PowerWatts: power,
			TimeSec:    maxRun.ExecTimeSec * slow,
		}
	}
	return clamped, nil
}

// ValidateRun applies the online phase's profiling-run preconditions
// without predicting anything. Serving layers use it to reject a bad
// request before it is queued, keeping the fused batch path error-free.
func (s *Sweeper) ValidateRun(maxRun dcgm.Run) error { return s.validateRun(maxRun) }

// PredictProfilesInto runs the online phase for a batch of profiling runs
// through ONE fused forward pass per model: the runs' sweep rows are
// stacked into a single (len(runs)·len(Freqs())) × features matrix, scaled
// in place, and pushed through the power and time networks once, so the
// per-layer traversal cost is amortized across the whole batch. dsts[i]
// receives run i's profiles (each buffer must have len(Freqs()) entries)
// and clamped[i] its safety-floor clamp count.
//
// Every output value is bit-identical to calling PredictProfileInto once
// per run, at any batch size: the feature fill, the scaler, and the
// forward-pass kernels are all row-independent with an unchanged
// per-row summation order. Workspaces are pooled and grow-only, so
// steady-state batches of a stable size allocate nothing. Safe for
// concurrent use like PredictProfileInto.
func (s *Sweeper) PredictProfilesInto(dsts [][]objective.Profile, clamped []int, runs []dcgm.Run) error {
	if len(dsts) != len(runs) || len(clamped) != len(runs) {
		return fmt.Errorf("core: batch sweep has %d runs but %d profile buffers and %d clamp slots", len(runs), len(dsts), len(clamped))
	}
	if len(runs) == 0 {
		return nil
	}
	nF := len(s.freqs)
	for i, r := range runs {
		if err := s.validateRun(r); err != nil {
			return fmt.Errorf("core: batch run %d: %w", i, err)
		}
		if len(dsts[i]) != nF {
			return fmt.Errorf("core: batch profile buffer %d has %d entries, sweep has %d frequencies", i, len(dsts[i]), nF)
		}
	}
	m := s.models
	nf := len(m.Features)
	rows := len(runs) * nF
	ws := s.batchPool.Get().(*batchWS)
	defer s.batchPool.Put(ws)
	x := reshapeMat(&ws.x, rows, nf)
	if cap(ws.rows) < rows {
		ws.rows = make([][]float64, rows)
	}
	ws.rows = ws.rows[:rows]
	for i := range ws.rows {
		// Refresh the views every call: reshapeMat may have reallocated.
		ws.rows[i] = x.Row(i)
	}
	if cap(ws.base) < nf {
		ws.base = make([]float64, nf)
	}
	base := ws.base[:nf]

	for bi := range runs {
		mean := runs[bi].MeanSample()
		if err := dataset.FeatureVectorInto(base, m.Features, mean, s.target.MaxFreqMHz, s.target.MaxFreqMHz); err != nil {
			return err
		}
		for i := range s.freqs {
			row := x.Row(bi*nF + i)
			copy(row, base)
			if s.clockIdx >= 0 {
				row[s.clockIdx] = s.clockVals[i]
			}
		}
	}
	if m.Scaler != nil {
		if err := m.Scaler.TransformInto(ws.rows, ws.rows); err != nil {
			return fmt.Errorf("core: scaling features: %w", err)
		}
	}
	pP := reshapeMat(&ws.pP, rows, 1)
	tP := reshapeMat(&ws.tP, rows, 1)
	if err := m.Power.Predictor().PredictMatInto(pP, x); err != nil {
		return fmt.Errorf("core: power prediction: %w", err)
	}
	if err := m.Time.Predictor().PredictMatInto(tP, x); err != nil {
		return fmt.Errorf("core: time prediction: %w", err)
	}
	for bi, run := range runs {
		n := 0
		for i, f := range s.freqs {
			power := pP.At(bi*nF+i, 0) * s.target.TDPWatts
			slow := tP.At(bi*nF+i, 0)
			if power < 1 {
				power = 1
				n++
			}
			if slow < 1e-6 {
				slow = 1e-6
				n++
			}
			dsts[bi][i] = objective.Profile{
				FreqMHz:    f,
				PowerWatts: power,
				TimeSec:    run.ExecTimeSec * slow,
			}
		}
		clamped[bi] = n
	}
	return nil
}

// PredictProfile is the allocating convenience form of PredictProfileInto.
func (s *Sweeper) PredictProfile(maxRun dcgm.Run) ([]objective.Profile, int, error) {
	out := make([]objective.Profile, len(s.freqs))
	clamped, err := s.PredictProfileInto(out, maxRun)
	if err != nil {
		return nil, 0, err
	}
	return out, clamped, nil
}

// SweeperFor returns the memoized serving sweeper for (target, freqs):
// every caller asking for the same target and frequency list shares one
// Sweeper (and therefore one workspace pool), which is the concurrency
// model the serving layer and multi-governor deployments rely on.
func (m *Models) SweeperFor(target backend.Arch, freqs []float64) (*Sweeper, error) {
	return m.sweeperFor(target, freqs)
}

// sweeperFor returns a memoized sweeper for (target, freqs), rebuilding
// only when the target identity or frequency list changes. One slot per
// architecture name: the common serving pattern is a stable design-space
// sweep per target.
func (m *Models) sweeperFor(target backend.Arch, freqs []float64) (*Sweeper, error) {
	m.swMu.Lock()
	defer m.swMu.Unlock()
	if sw := m.sweepers[target.Name]; sw != nil && sw.matches(target, freqs) {
		return sw, nil
	}
	sw, err := m.NewSweeper(target, freqs)
	if err != nil {
		return nil, err
	}
	if m.sweepers == nil {
		m.sweepers = map[string]*Sweeper{}
	}
	m.sweepers[target.Name] = sw
	return sw, nil
}
