package core

import (
	"math"
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/workloads"
)

// quickCampaign collects a small deterministic parallel campaign of four
// contrasting workloads, cheap enough to train cross-validation folds on
// repeatedly.
func quickCampaign(t *testing.T) []dcgm.Run {
	t.Helper()
	ks := []sim.KernelProfile{workloads.DGEMM(), workloads.STREAM()}
	for _, name := range []string{"HOTSPOT", "NW"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, w)
	}
	runs, err := dcgm.CollectAllParallel(sim.New(sim.GA100(), 0), backend.Workloads(ks), dcgm.Config{
		Freqs:            []float64{510, 990, 1410},
		Runs:             1,
		MaxSamplesPerRun: 3,
		Seed:             77,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func quickCVOpts(workers int) TrainOptions {
	return TrainOptions{PowerEpochs: 8, TimeEpochs: 8, Hidden: []int{8}, Seed: 1, Workers: workers}
}

// TestCrossValidateDeterministicAcrossWorkers pins the concurrency
// contract of the parallel fold loop: accuracies must be bit-identical to
// the single-worker run for any worker count, since each fold trains on
// its own data with its own deterministic seed.
func TestCrossValidateDeterministicAcrossWorkers(t *testing.T) {
	runs := quickCampaign(t)
	base, baseOrder, err := CrossValidate(sim.GA100().Spec(), runs, quickCVOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 9} {
		got, order, err := CrossValidate(sim.GA100().Spec(), runs, quickCVOpts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != len(baseOrder) {
			t.Fatalf("Workers=%d: %d folds, want %d", workers, len(order), len(baseOrder))
		}
		for i := range order {
			if order[i] != baseOrder[i] {
				t.Fatalf("Workers=%d: order %v, want %v", workers, order, baseOrder)
			}
		}
		for w, acc := range base {
			g := got[w]
			if math.Float64bits(g.Power) != math.Float64bits(acc.Power) ||
				math.Float64bits(g.Time) != math.Float64bits(acc.Time) {
				t.Errorf("Workers=%d fold %s: accuracy %+v differs from serial %+v", workers, w, g, acc)
			}
		}
	}
}

// TestOfflineTrainDeterministicAcrossWorkers pins that the worker count
// used for offline collection never changes the campaign: the per-workload
// seeding makes runs — and therefore the trained models' predictions —
// bit-identical whether collected serially or in parallel.
func TestOfflineTrainDeterministicAcrossWorkers(t *testing.T) {
	train := func(workers int) *OfflineResult {
		dev := sim.New(sim.GA100(), 1)
		opts := quickCVOpts(workers)
		off, err := OfflineTrain(dev, backend.Workloads([]sim.KernelProfile{workloads.DGEMM(), workloads.STREAM()}),
			dcgm.Config{Freqs: []float64{510, 1410}, Runs: 1, Seed: 5}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return off
	}
	base := train(1)
	par := train(4)
	if len(base.Runs) != len(par.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(base.Runs), len(par.Runs))
	}
	for i := range base.Runs {
		b, p := base.Runs[i], par.Runs[i]
		if b.Workload != p.Workload || math.Float64bits(b.AvgPowerWatts) != math.Float64bits(p.AvgPowerWatts) ||
			math.Float64bits(b.ExecTimeSec) != math.Float64bits(p.ExecTimeSec) {
			t.Fatalf("run %d differs: serial %+v vs parallel %+v", i, b, p)
		}
	}
	// Same runs + same training seed ⇒ identical model predictions.
	profile := base.Runs[len(base.Runs)-1]
	freqs := sim.GA100().DesignClocks()
	pb, err := base.Models.PredictProfile(sim.GA100().Spec(), profile, freqs)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := par.Models.PredictProfile(sim.GA100().Spec(), profile, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pb {
		if math.Float64bits(pb[i].PowerWatts) != math.Float64bits(pp[i].PowerWatts) ||
			math.Float64bits(pb[i].TimeSec) != math.Float64bits(pp[i].TimeSec) {
			t.Fatalf("prediction %d differs: %+v vs %+v", i, pb[i], pp[i])
		}
	}
}
