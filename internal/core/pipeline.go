package core

import (
	"encoding/json"
	"fmt"
	"os"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/stats"
)

// OfflineResult is what the offline phase produces: the trained models
// and the datasets they were trained on (kept for inspection, the MI
// study, and the ablations).
type OfflineResult struct {
	Models *Models
	// Dataset holds the per-run aggregates (one point per run; the time
	// model's training data and the feature-study input).
	Dataset *dataset.Dataset
	// SampleDataset holds the per-sample, phase-resolved telemetry points
	// (the power model's training data).
	SampleDataset *dataset.Dataset
	Runs          []dcgm.Run
}

// OfflineTrainSamplesPerRun caps how many 20 ms samples each training run
// contributes to the power model's dataset. Collection campaigns produce
// thousands of runs, so a handful of samples per run yields a large and
// phase-diverse dataset at tractable training cost.
const OfflineTrainSamplesPerRun = 6

// OfflineTrain runs the complete offline phase on a device: collect
// telemetry for the training workloads across the DVFS design space, build
// the per-run and per-sample datasets, and train both models.
func OfflineTrain(dev backend.Device, training []backend.Workload, collect dcgm.Config, opts TrainOptions) (*OfflineResult, error) {
	if collect.MaxSamplesPerRun == 0 {
		collect.MaxSamplesPerRun = OfflineTrainSamplesPerRun
	}
	// Collect with the per-workload-seeded parallel collector: the runs it
	// returns are bit-identical for any worker count (including 1), so the
	// trained models depend only on the campaign config, never on how many
	// cores collected it.
	runs, err := dcgm.CollectAllParallel(dev, training, collect, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: offline collection: %w", err)
	}
	ds, err := dataset.Build(dev.Arch(), runs, dataset.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: building dataset: %w", err)
	}
	sds, err := dataset.Build(dev.Arch(), runs, dataset.Options{PerSample: true})
	if err != nil {
		return nil, fmt.Errorf("core: building sample dataset: %w", err)
	}
	models, err := TrainSplit(sds, ds, opts)
	if err != nil {
		return nil, err
	}
	// Record provenance: which backend produced the telemetry and the DVFS
	// table it swept, so serving can refuse a mismatched deployment.
	models.Backend = dev.Kind()
	models.DVFS = DVFSTableOf(dev.Arch())
	return &OfflineResult{Models: models, Dataset: ds, SampleDataset: sds, Runs: runs}, nil
}

// OnlineResult is the outcome of the online phase for one application.
type OnlineResult struct {
	Workload   string
	ProfileRun dcgm.Run            // the single max-clock profiling run
	Predicted  []objective.Profile // model predictions across the design space
	// Clamped counts predictions floored to the 1 W power / 1e-6 slowdown
	// safety bounds, across both axes. Non-zero means the models are
	// undertrained for this workload and the predictions should not be
	// trusted blindly.
	Clamped int
	// ClampedCore and ClampedMem split Clamped by design-space axis: core
	// counts clamps at the default memory P-state (every point of a 1-D
	// sweep), mem counts clamps at off-default memory clocks. A clean core
	// count with a dirty mem count means the models extrapolate badly along
	// the memory axis specifically.
	ClampedCore int
	ClampedMem  int
}

// OnlinePredict runs the online phase for one application on a device:
// profile once at the maximum clock, then predict power/time/energy across
// the architecture's core-frequency design space.
func OnlinePredict(dev backend.Device, m *Models, app backend.Workload, collect dcgm.Config) (*OnlineResult, error) {
	return OnlinePredictGrid(dev, m, app, collect, nil)
}

// OnlinePredictGrid is OnlinePredict over the 2-D (core × memory) design
// grid: the single max-clock profile seeds predictions for every
// (core, mem) pair in designClocks × memFreqs. A nil memFreqs degenerates
// to OnlinePredict's core-only design space, bit for bit.
func OnlinePredictGrid(dev backend.Device, m *Models, app backend.Workload, collect dcgm.Config, memFreqs []float64) (*OnlineResult, error) {
	coll := dcgm.NewCollector(dev, collect)
	run, err := coll.ProfileAtMax(app)
	if err != nil {
		return nil, fmt.Errorf("core: profiling %s: %w", app.WorkloadName(), err)
	}
	sw, err := m.sweeperFor(dev.Arch(), dev.Arch().DesignClocks(), memFreqs)
	if err != nil {
		return nil, fmt.Errorf("core: predicting %s: %w", app.WorkloadName(), err)
	}
	profiles, clamped, err := sw.PredictProfile(run)
	if err != nil {
		return nil, fmt.Errorf("core: predicting %s: %w", app.WorkloadName(), err)
	}
	return &OnlineResult{
		Workload:    app.WorkloadName(),
		ProfileRun:  run,
		Predicted:   profiles,
		Clamped:     clamped.Total(),
		ClampedCore: clamped.Core,
		ClampedMem:  clamped.Mem,
	}, nil
}

// Selection is a chosen frequency with its objective and trade-off against
// the maximum clock.
type Selection struct {
	Objective string
	FreqMHz   float64
	// MemFreqMHz is the selected memory P-state, 0 when selection ran over
	// a core-only (1-D) profile set.
	MemFreqMHz float64
	EnergyPct  float64
	TimePct    float64
}

// SelectFrequency applies an objective (optionally threshold-constrained;
// pass a negative threshold for the paper's unconstrained evaluation) to a
// set of profiles and reports the trade-off against the maximum clock.
func SelectFrequency(profiles []objective.Profile, obj objective.Objective, threshold float64) (Selection, error) {
	var chosen objective.Profile
	var err error
	if threshold < 0 {
		chosen, err = objective.SelectOptimal(profiles, obj)
	} else {
		chosen, err = objective.SelectWithThreshold(profiles, obj, threshold)
	}
	if err != nil {
		return Selection{}, err
	}
	to, err := objective.Evaluate(profiles, chosen)
	if err != nil {
		return Selection{}, err
	}
	return Selection{
		Objective:  obj.Name(),
		FreqMHz:    chosen.FreqMHz,
		MemFreqMHz: to.MemFreqMHz,
		EnergyPct:  to.EnergyPct,
		TimePct:    to.TimePct,
	}, nil
}

// manifest is the on-disk metadata companion to the two model files.
type manifest struct {
	Format       string     `json:"format"`
	Features     []string   `json:"features"`
	TrainedOn    string     `json:"trained_on"`
	TDPWatts     float64    `json:"tdp_watts"`
	MaxFreqMHz   float64    `json:"max_freq_mhz"`
	Backend      string     `json:"backend,omitempty"`
	DVFS         *DVFSTable `json:"dvfs,omitempty"`
	FeatureMeans []float64  `json:"feature_means,omitempty"`
	FeatureStds  []float64  `json:"feature_stds,omitempty"`
}

const manifestFormat = "gpudvfs-models/1"

func saveManifest(path string, m *Models) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	man := manifest{
		Format:     manifestFormat,
		Features:   m.Features,
		TrainedOn:  m.TrainedOn,
		TDPWatts:   m.TDPWatts,
		MaxFreqMHz: m.MaxFreqMHz,
		Backend:    m.Backend,
	}
	if !m.DVFS.IsZero() {
		dvfs := m.DVFS
		man.DVFS = &dvfs
	}
	if m.Scaler != nil {
		man.FeatureMeans = m.Scaler.Means
		man.FeatureStds = m.Scaler.Stds
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(man)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("core: writing manifest: %w", werr)
	}
	return cerr
}

func loadManifest(path string) (*Models, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var man manifest
	if err := json.NewDecoder(f).Decode(&man); err != nil {
		return nil, fmt.Errorf("core: reading manifest: %w", err)
	}
	if man.Format != manifestFormat {
		return nil, fmt.Errorf("core: unsupported manifest format %q, want %q", man.Format, manifestFormat)
	}
	m := &Models{
		Features:   man.Features,
		TrainedOn:  man.TrainedOn,
		TDPWatts:   man.TDPWatts,
		MaxFreqMHz: man.MaxFreqMHz,
		Backend:    man.Backend,
	}
	if man.DVFS != nil {
		m.DVFS = *man.DVFS
	}
	if len(man.FeatureMeans) > 0 {
		if len(man.FeatureMeans) != len(man.FeatureStds) {
			return nil, fmt.Errorf("core: manifest scaler has %d means but %d stds", len(man.FeatureMeans), len(man.FeatureStds))
		}
		m.Scaler = &stats.StandardScaler{Means: man.FeatureMeans, Stds: man.FeatureStds}
	}
	return m, nil
}
