package core

import (
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/mat"
	"gpudvfs/internal/nn"
	"gpudvfs/internal/objective"
)

// naiveForward runs one inference pass through the network with freshly
// allocated intermediates at every layer — the cost of serving without the
// Predictor's pooled workspaces. Accumulation order matches the pooled
// path (both sit on mat.MulTBInto), so outputs are bit-identical.
func naiveForward(n *nn.Network, x *mat.Matrix) *mat.Matrix {
	a := x
	for _, l := range n.Layers {
		z := mat.New(a.Rows, l.Out)
		mat.MulTBInto(z, a, l.W)
		z.AddRowVec(l.B)
		z.Apply(l.Act.Func)
		a = z
	}
	return a
}

// naiveSweep is the build-everything-per-call reference arm: each call
// reconstructs the (core × mem) feature grid from scratch, rescales it,
// and forwards both networks through naiveForward. This is what the hot
// path would cost without the Sweeper's precomputed static plane.
// memFreqs == nil degenerates to the 1-D core-frequency line.
func naiveSweep(m *Models, target backend.Arch, maxRun dcgm.Run, freqs, memFreqs []float64, dst []objective.Profile) (Clamps, error) {
	var cl Clamps
	mean := maxRun.MeanSample()
	defMem := target.DefaultMemClock()
	mems := memFreqs
	if mems == nil {
		defMem = 0
		mems = []float64{0}
	}
	nF := len(freqs)
	rows := make([][]float64, 0, nF*len(mems))
	for _, mem := range mems {
		for _, f := range freqs {
			row := make([]float64, len(m.Features))
			if err := dataset.FeatureVectorGridInto(row, m.Features, mean, f, target.MaxFreqMHz, dataset.MemRatio(mem, defMem)); err != nil {
				return cl, err
			}
			rows = append(rows, row)
		}
	}
	if m.Scaler != nil {
		scaled, err := m.Scaler.Transform(rows)
		if err != nil {
			return cl, err
		}
		rows = scaled
	}
	x := mat.New(len(rows), len(m.Features))
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	pP := naiveForward(m.Power, x)
	tP := naiveForward(m.Time, x)
	for g := range dst {
		power := pP.At(g, 0) * target.TDPWatts
		slow := tP.At(g, 0)
		mem := 0.0
		onMem := false
		if memFreqs != nil {
			mem = memFreqs[g/nF]
			onMem = mem != defMem
		}
		if power < 1 {
			power = 1
			if onMem {
				cl.Mem++
			} else {
				cl.Core++
			}
		}
		if slow < 1e-6 {
			slow = 1e-6
			if onMem {
				cl.Mem++
			} else {
				cl.Core++
			}
		}
		dst[g] = objective.Profile{
			FreqMHz:    freqs[g%nF],
			MemFreqMHz: mem,
			PowerWatts: power,
			TimeSec:    maxRun.ExecTimeSec * slow,
		}
	}
	return cl, nil
}

// benchSweepArm drives one sweep arm: naive rebuilds everything per call,
// optimized sits on a pre-built Sweeper with a caller-owned buffer.
func benchSweepArm(b *testing.B, memFreqs []float64, naive bool) {
	m := gridModels(b)
	run := benchProfileRun(b)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	sw, err := m.NewGridSweeper(arch, freqs, memFreqs)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]objective.Profile, sw.GridSize())
	// Sanity: the naive arm must agree with the sweeper bit for bit, or
	// the two arms are not measuring the same computation.
	want := make([]objective.Profile, sw.GridSize())
	if _, err := sw.PredictProfileInto(want, run); err != nil {
		b.Fatal(err)
	}
	if _, err := naiveSweep(m, arch, run, freqs, memFreqs, dst); err != nil {
		b.Fatal(err)
	}
	if !gridProfilesIdentical(dst, want) {
		b.Fatal("naive sweep and Sweeper disagree")
	}
	b.ReportAllocs()
	b.ResetTimer()
	if naive {
		for i := 0; i < b.N; i++ {
			if _, err := naiveSweep(m, arch, run, freqs, memFreqs, dst); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	for i := 0; i < b.N; i++ {
		if _, err := sw.PredictProfileInto(dst, run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep1DNaive is the 61-point core-frequency line rebuilt from
// scratch on every call — the pre-Sweeper reference cost.
func BenchmarkSweep1DNaive(b *testing.B) { benchSweepArm(b, nil, true) }

// BenchmarkSweep1D is the optimized 61-point line: precomputed static
// plane, pooled workspaces, zero steady-state allocations.
func BenchmarkSweep1D(b *testing.B) { benchSweepArm(b, nil, false) }

// BenchmarkSweep2DNaive rebuilds the full 61×3 (core × mem) grid per call.
func BenchmarkSweep2DNaive(b *testing.B) {
	benchSweepArm(b, sim.GA100().Spec().MemClocks(), true)
}

// BenchmarkSweep2D is the acceptance benchmark: the 61×3 grid on the
// precomputed-plane hot path must stay within ~1.5× the 1-D sweep's
// ns/op at zero allocations, because the static plane means tripling the
// grid only triples the inference rows, not the feature construction.
func BenchmarkSweep2D(b *testing.B) {
	benchSweepArm(b, sim.GA100().Spec().MemClocks(), false)
}
