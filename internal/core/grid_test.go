package core

import (
	"math"
	"strings"
	"testing"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/dataset"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/nn"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/stats"
	"gpudvfs/internal/workloads"
)

// gridModels is serveModels with the memory-clock feature in the layout,
// so the mem axis actually reaches the networks.
func gridModels(t testing.TB) *Models {
	t.Helper()
	arch := sim.GA100().Spec()
	power, err := nn.NewNetwork(nn.PaperArch(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	tmodel, err := nn.NewNetwork(nn.PaperArch(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	return &Models{
		Features:   []string{"fp_active", "dram_active", "sm_app_clock", dataset.MemFeature},
		Scaler:     &stats.StandardScaler{Means: []float64{0.4, 0.3, 0.7, 0.9}, Stds: []float64{0.2, 0.15, 0.25, 0.3}},
		Power:      power,
		Time:       tmodel,
		TrainedOn:  arch.Name,
		TDPWatts:   arch.TDPWatts,
		MaxFreqMHz: arch.MaxFreqMHz,
	}
}

// oracleGridProfile is the 2-D analogue of oracleProfile: every grid point
// built per call as a full feature row through FeatureVectorGridInto, the
// whole grid scaled and predicted in one allocating pass. Memory-outer
// layout, matching the sweeper's documented ordering. It also returns the
// per-axis clamp counts the floors imply.
func oracleGridProfile(t *testing.T, m *Models, target backend.Arch, maxRun dcgm.Run, freqs, memFreqs []float64) ([]objective.Profile, Clamps) {
	t.Helper()
	mean := maxRun.MeanSample()
	defMem := target.DefaultMemClock()
	rows := make([][]float64, 0, len(freqs)*len(memFreqs))
	for _, mem := range memFreqs {
		for _, f := range freqs {
			row := make([]float64, len(m.Features))
			if err := dataset.FeatureVectorGridInto(row, m.Features, mean, f, target.MaxFreqMHz, dataset.MemRatio(mem, defMem)); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, row)
		}
	}
	if m.Scaler != nil {
		scaled, err := m.Scaler.Transform(rows)
		if err != nil {
			t.Fatal(err)
		}
		rows = scaled
	}
	pPred, err := m.Power.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	tPred, err := m.Time.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	var cl Clamps
	out := make([]objective.Profile, len(rows))
	for i := range rows {
		f := freqs[i%len(freqs)]
		mem := memFreqs[i/len(freqs)]
		onMem := mem != defMem
		power := pPred[i][0] * target.TDPWatts
		slow := tPred[i][0]
		if power < 1 {
			power = 1
			if onMem {
				cl.Mem++
			} else {
				cl.Core++
			}
		}
		if slow < 1e-6 {
			slow = 1e-6
			if onMem {
				cl.Mem++
			} else {
				cl.Core++
			}
		}
		out[i] = objective.Profile{
			FreqMHz:    f,
			MemFreqMHz: mem,
			PowerWatts: power,
			TimeSec:    maxRun.ExecTimeSec * slow,
		}
	}
	return out, cl
}

// gridProfilesIdentical is profilesIdentical including the memory axis.
func gridProfilesIdentical(a, b []objective.Profile) bool {
	if !profilesIdentical(a, b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].MemFreqMHz) != math.Float64bits(b[i].MemFreqMHz) {
			return false
		}
	}
	return true
}

// TestGridSweeperMatchesOracle2D checks the tentpole's correctness
// contract: the precomputed-static-plane hot path over the full
// (core × mem) grid is bit-identical to building every grid point's
// feature row from scratch, for models where the memory feature reaches
// the networks.
func TestGridSweeperMatchesOracle2D(t *testing.T) {
	m := gridModels(t)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	mems := arch.MemClocks()
	sw, err := m.NewGridSweeper(arch, freqs, mems)
	if err != nil {
		t.Fatal(err)
	}
	if sw.GridSize() != len(freqs)*len(mems) {
		t.Fatalf("grid size %d, want %d", sw.GridSize(), len(freqs)*len(mems))
	}
	for i, w := range []sim.KernelProfile{workloads.DGEMM(), workloads.STREAM(), workloads.LAMMPS()} {
		run := serveRun(t, int64(70+i), w)
		want, wantCl := oracleGridProfile(t, m, arch, run, freqs, mems)

		got := make([]objective.Profile, sw.GridSize())
		gotCl, err := sw.PredictProfileInto(got, run)
		if err != nil {
			t.Fatal(err)
		}
		if !gridProfilesIdentical(got, want) {
			t.Fatalf("%s: 2-D sweeper diverges from the per-point oracle", w.Name)
		}
		if gotCl != wantCl {
			t.Fatalf("%s: clamp split %+v, oracle %+v", w.Name, gotCl, wantCl)
		}
		// Second call hits the pooled workspace; the staged static plane
		// must not have been corrupted by the first pass.
		got2 := make([]objective.Profile, sw.GridSize())
		if _, err := sw.PredictProfileInto(got2, run); err != nil {
			t.Fatal(err)
		}
		if !gridProfilesIdentical(got2, want) {
			t.Fatalf("%s: second pooled call diverges", w.Name)
		}
	}
}

// TestGridSweeperDegenerate1D checks the N=1 acceptance criterion from
// both ends. A nil memory axis must reproduce the historical 1-D oracle
// bit-for-bit even when the models carry the memory feature; a
// single-point [defaultMem] axis must agree with the nil axis on every
// pre-existing field (only MemFreqMHz is newly reported) and attribute
// all clamps to the core axis.
func TestGridSweeperDegenerate1D(t *testing.T) {
	m := gridModels(t)
	arch := sim.GA100().Spec()
	freqs := arch.DesignClocks()
	swNil, err := m.NewGridSweeper(arch, freqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	swDef, err := m.NewGridSweeper(arch, freqs, []float64{arch.DefaultMemClock()})
	if err != nil {
		t.Fatal(err)
	}
	run := serveRun(t, 75, workloads.STREAM())

	want := oracleProfile(t, m, arch, run, freqs)
	gotNil, clNil, err := swNil.PredictProfile(run)
	if err != nil {
		t.Fatal(err)
	}
	if !profilesIdentical(gotNil, want) {
		t.Fatal("nil-mem grid sweeper diverges from the 1-D oracle")
	}
	for i := range gotNil {
		if gotNil[i].MemFreqMHz != 0 {
			t.Fatalf("1-D profile %d reports memory clock %v, want 0", i, gotNil[i].MemFreqMHz)
		}
	}

	gotDef, clDef, err := swDef.PredictProfile(run)
	if err != nil {
		t.Fatal(err)
	}
	if !profilesIdentical(gotDef, gotNil) {
		t.Fatal("[defaultMem] grid diverges from the nil-mem grid on pre-existing fields")
	}
	for i := range gotDef {
		if gotDef[i].MemFreqMHz != arch.DefaultMemClock() {
			t.Fatalf("default-mem profile %d reports %v, want %v", i, gotDef[i].MemFreqMHz, arch.DefaultMemClock())
		}
	}
	if clNil != clDef {
		t.Fatalf("clamp counts differ: nil %+v, [defaultMem] %+v", clNil, clDef)
	}
	if clNil.Mem != 0 || clDef.Mem != 0 {
		t.Fatalf("degenerate grids attributed clamps to the memory axis: %+v / %+v", clNil, clDef)
	}
}

// TestGridSweeperBatchMatchesSingle2D extends the fused-batch bit-identity
// contract to the 2-D grid: stacking several runs' grids into one forward
// pass must equal per-run PredictProfileInto calls exactly, clamp splits
// included.
func TestGridSweeperBatchMatchesSingle2D(t *testing.T) {
	m := gridModels(t)
	arch := sim.GA100().Spec()
	sw, err := m.NewGridSweeper(arch, arch.DesignClocks(), arch.MemClocks())
	if err != nil {
		t.Fatal(err)
	}
	runs := []dcgm.Run{
		serveRun(t, 80, workloads.DGEMM()),
		serveRun(t, 81, workloads.STREAM()),
		serveRun(t, 82, workloads.LAMMPS()),
	}
	wantP := make([][]objective.Profile, len(runs))
	wantC := make([]Clamps, len(runs))
	for i, r := range runs {
		wantP[i] = make([]objective.Profile, sw.GridSize())
		if wantC[i], err = sw.PredictProfileInto(wantP[i], r); err != nil {
			t.Fatal(err)
		}
	}
	gotP := make([][]objective.Profile, len(runs))
	gotC := make([]Clamps, len(runs))
	for i := range gotP {
		gotP[i] = make([]objective.Profile, sw.GridSize())
	}
	if err := sw.PredictProfilesInto(gotP, gotC, runs); err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if !gridProfilesIdentical(gotP[i], wantP[i]) {
			t.Fatalf("batched run %d diverges from the single-run sweep", i)
		}
		if gotC[i] != wantC[i] {
			t.Fatalf("batched run %d clamps %+v, single-run %+v", i, gotC[i], wantC[i])
		}
	}
}

// TestGridSweeperValidation pins the construction and per-run guards the
// 2-D extension added.
func TestGridSweeperValidation(t *testing.T) {
	m := gridModels(t)
	arch := sim.GA100().Spec()
	if _, err := m.NewGridSweeper(arch, arch.DesignClocks(), []float64{}); err == nil {
		t.Fatal("empty (non-nil) memory list accepted")
	}
	if _, err := m.NewGridSweeper(arch, arch.DesignClocks(), []float64{999}); err == nil {
		t.Fatal("unsupported memory clock accepted")
	}
	noMem := arch
	noMem.MemFreqMHz = 0
	noMem.Name = "NOMEM"
	if _, err := m.NewGridSweeper(noMem, arch.DesignClocks(), []float64{810}); err == nil {
		t.Fatal("memory axis accepted on an architecture without one")
	}
	sw, err := m.NewGridSweeper(arch, arch.DesignClocks(), arch.MemClocks())
	if err != nil {
		t.Fatal(err)
	}
	run := serveRun(t, 85, workloads.DGEMM())
	short := make([]objective.Profile, len(arch.DesignClocks()))
	if _, err := sw.PredictProfileInto(short, run); err == nil {
		t.Fatal("1-D-sized buffer accepted for a 2-D sweep")
	}
	offDefault := run
	offDefault.MemFreqMHz = 810
	full := make([]objective.Profile, sw.GridSize())
	if _, err := sw.PredictProfileInto(full, offDefault); err == nil {
		t.Fatal("profiling run at an off-default memory clock accepted")
	}
}

// TestPlanCacheKeyMemAxis pins the cache-key compatibility contract: a
// core-only cache's keys carry no memory section (byte-identical to the
// pre-grid format), while a grid cache's prefix names its memory list.
func TestPlanCacheKeyMemAxis(t *testing.T) {
	m := gridModels(t)
	arch := sim.GA100().Spec()
	mk := func(mems []float64) *PlanCache {
		sw, err := m.NewGridSweeper(arch, arch.DesignClocks(), mems)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := NewPlanCache(sw, PlanCacheConfig{Objective: objective.EDP{}})
		if err != nil {
			t.Fatal(err)
		}
		return pc
	}
	pc1 := mk(nil)
	if strings.Contains(pc1.prefix, "mem") {
		t.Fatalf("core-only cache prefix %q mentions the memory axis", pc1.prefix)
	}
	pc2 := mk([]float64{1597, 810})
	if !strings.Contains(pc2.prefix, "mem:1597:810|") {
		t.Fatalf("grid cache prefix %q does not name its memory list", pc2.prefix)
	}
}
