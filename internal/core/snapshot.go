package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// snapshotVersion stamps the on-disk format. Bump on any change to the
// entry or header shape; a loader refuses versions it does not know
// rather than guessing.
const snapshotVersion = 1

// snapshotFile is the on-disk shape of a plan-cache snapshot: a header
// binding the snapshot to the cache configuration that produced it, plus
// the memoized selections in per-shard MRU→LRU order. Keys carry the full
// (arch, objective, threshold, mem-axis, quantized-features) identity, so
// a snapshot can only warm a cache computing byte-identical keys — which
// is exactly what the header refusals enforce.
type snapshotFile struct {
	Version int `json:"version"`
	// Prefix is the cache's key prefix (arch, objective, threshold, and
	// the memory-clock ladder when present). A drifted prefix means the
	// snapshot answers different questions; loading it would serve wrong
	// plans silently.
	Prefix string `json:"prefix"`
	// Quantum is the feature-quantization bucket width the keys were
	// computed under. Same-looking keys under a different quantum alias
	// different workloads.
	Quantum float64 `json:"quantum"`
	// Shards is the shard count (after power-of-two rounding). Entry
	// order is per-shard LRU order; restoring it requires the same
	// key→shard mapping.
	Shards int `json:"shards"`
	// Capacity is informational (the loader clips to its own bound).
	Capacity int `json:"capacity"`
	// Count must equal len(Entries) — a cheap integrity check that
	// catches a file truncated between complete JSON values.
	Count   int             `json:"count"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry is one memoized selection. Failed and in-flight entries
// are never snapshotted.
type snapshotEntry struct {
	Key     string    `json:"key"`
	Sel     Selection `json:"sel"`
	Clamped Clamps    `json:"clamped"`
}

// Snapshot serializes the cache's memoized selections to w: a versioned,
// config-stamped header and every completed entry in shard order, each
// shard MRU-first. Shards are locked one at a time, so a snapshot taken
// under load is per-shard consistent and never blocks the whole cache;
// entries still computing (or failed) are skipped.
//
// Derive payloads are deliberately not captured: they are arbitrary
// in-memory structures (the fleet planner's feasibility curves) rebuilt
// from profiles the cache no longer holds. A cache configured with Derive
// refuses to load snapshots — see LoadSnapshot — so warm-started caches
// never serve nil payloads where callers expect real ones.
func (c *PlanCache) Snapshot(w io.Writer) error {
	snap := snapshotFile{
		Version:  snapshotVersion,
		Prefix:   c.prefix,
		Quantum:  c.cfg.Quantum,
		Shards:   len(c.shards),
		Capacity: c.cfg.Capacity,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*planEntry)
			if !e.done.Load() || e.err != nil {
				continue
			}
			snap.Entries = append(snap.Entries, snapshotEntry{Key: e.key, Sel: e.sel, Clamped: e.clamped})
		}
		sh.mu.Unlock()
	}
	snap.Count = len(snap.Entries)
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// LoadSnapshot restores memoized selections from a snapshot written by
// Snapshot into the cache, returning how many entries were installed.
// Restored entries serve hits immediately — the sweeper is never invoked
// for them — which is what keeps a restarted replica from stampeding the
// miss path for workloads it already knew.
//
// The snapshot must match the cache's configuration: the key prefix
// (architecture, objective, threshold, memory axis), quantization
// quantum, and shard count are all stamped into the header and checked
// here. A mismatch, an unknown version, or a corrupt/truncated file is
// refused with a descriptive error and leaves the cache unchanged (a
// partial header never installs entries). Keys already present and
// entries beyond a shard's LRU bound are skipped, so loading a snapshot
// from a larger-capacity cache degrades to keeping each shard's
// most-recent slice.
func (c *PlanCache) LoadSnapshot(r io.Reader) (int, error) {
	if c.cfg.Derive != nil {
		return 0, errors.New("core: cache has a Derive payload hook; snapshots cannot capture derived payloads — warm the cache by replaying traffic instead")
	}
	var snap snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return 0, fmt.Errorf("core: corrupt plan-cache snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("core: plan-cache snapshot version %d, this build reads version %d", snap.Version, snapshotVersion)
	}
	if snap.Prefix != c.prefix {
		return 0, fmt.Errorf("core: plan-cache snapshot was taken under key prefix %q, cache computes %q (architecture, objective, threshold, or memory axis changed)", snap.Prefix, c.prefix)
	}
	if snap.Quantum != c.cfg.Quantum {
		return 0, fmt.Errorf("core: plan-cache snapshot was taken with quantum %v, cache uses %v — quantized keys are not comparable across quanta", snap.Quantum, c.cfg.Quantum)
	}
	if snap.Shards != len(c.shards) {
		return 0, fmt.Errorf("core: plan-cache snapshot was taken with %d shards, cache has %d — per-shard LRU order does not survive resharding", snap.Shards, len(c.shards))
	}
	if snap.Count != len(snap.Entries) {
		return 0, fmt.Errorf("core: truncated plan-cache snapshot: header promises %d entries, file holds %d", snap.Count, len(snap.Entries))
	}
	loaded := 0
	for _, se := range snap.Entries {
		sh := c.shardFor([]byte(se.Key))
		sh.mu.Lock()
		if _, exists := sh.entries[se.Key]; exists || sh.lru.Len() >= c.shardCap {
			sh.mu.Unlock()
			continue
		}
		e := &planEntry{key: se.Key, sel: se.Sel, clamped: se.Clamped}
		e.done.Store(true)
		// Entries arrive MRU-first per shard; pushing to the back keeps
		// the snapshot's recency order intact.
		e.elem = sh.lru.PushBack(e)
		sh.entries[se.Key] = e
		sh.mu.Unlock()
		loaded++
	}
	return loaded, nil
}

// SaveSnapshotFile writes the cache snapshot to path crash-safely: the
// bytes land in a temporary file in the same directory (same filesystem),
// are fsynced, and replace path with one atomic rename. A crash at any
// point leaves either the previous snapshot or the new one — never a
// torn file — so a daemon's periodic snapshot loop can fire on a timer
// without coordination.
func (c *PlanCache) SaveSnapshotFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".plancache-snapshot-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp) //nolint:errcheck // best-effort cleanup on the error path
		}
	}()
	if err = c.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshotFile restores a snapshot written by SaveSnapshotFile.
// A missing file is not an error — it reports (0, nil), the cold-start
// case a daemon's first boot hits.
func (c *PlanCache) LoadSnapshotFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	n, err := c.LoadSnapshot(f)
	if err != nil {
		return n, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}
