package fleet

import (
	"fmt"
	"math/rand"
)

// Arrival distributions. Each combines an interarrival process with a
// workload-key distribution over the run catalogue:
//
//	uniform — Poisson arrivals, uniformly random keys (the synthetic
//	          all-corners load the concurrency benches used)
//	zipf    — Poisson arrivals, Zipf(s=1.1) keys: a hot head of popular
//	          workloads with a long tail, the hit-heavy shape a shared
//	          cluster actually serves
//	bursty  — two-state modulated Poisson (an "on" state carrying
//	          burstFactor× the off-state rate for ~onFraction of the
//	          time, mean rate preserved), Zipf keys
const (
	DistUniform = "uniform"
	DistZipf    = "zipf"
	DistBursty  = "bursty"
)

// Bursty-state shape: the on state runs burstFactor× the off-state rate
// and covers onFraction of time in expectation, so
// rate = onFraction·λon + (1-onFraction)·λoff  ⇒  λoff = rate/1.6.
const (
	burstOnFraction = 0.2
	burstFactor     = 4.0
	// burstMeanOn is the mean on-state duration in expected on-state
	// arrivals: bursts average ~32 back-to-back jobs.
	burstMeanOn = 32.0
)

// arrivalGen produces the arrival stream for one replication. All
// randomness flows through the one rng in a fixed draw order
// (interarrival, then key, then GPU count — the engine draws the last),
// which is what keeps a replication's stream a pure function of its seed.
type arrivalGen struct {
	dist  string
	rng   *rand.Rand
	zipf  *rand.Zipf
	space int32

	rate float64 // uniform/zipf: the one Poisson rate

	// bursty state machine.
	onRate, offRate float64
	onMean, offMean float64 // mean state durations, seconds
	burstOn         bool
	stateEnd        float64
}

func newArrivalGen(dist string, rate float64, space int, rng *rand.Rand) (*arrivalGen, error) {
	g := &arrivalGen{dist: dist, rng: rng, space: int32(space), rate: rate}
	switch dist {
	case DistUniform:
	case DistZipf, DistBursty:
		g.zipf = rand.NewZipf(rng, 1.1, 1, uint64(space-1))
		if dist == DistBursty {
			g.offRate = rate / (burstOnFraction*burstFactor + (1 - burstOnFraction))
			g.onRate = burstFactor * g.offRate
			g.onMean = burstMeanOn / g.onRate
			g.offMean = g.onMean * (1 - burstOnFraction) / burstOnFraction
			// Start in the off state, with the first state change drawn
			// like every later one.
			g.stateEnd = g.rng.ExpFloat64() * g.offMean
		}
	default:
		return nil, fmt.Errorf("fleet: unknown arrival distribution %q (want %s, %s or %s)", dist, DistUniform, DistZipf, DistBursty)
	}
	return g, nil
}

// next returns the next arrival's absolute time (after now) and its
// workload key. It never allocates.
func (g *arrivalGen) next(now float64) (t float64, key int32) {
	switch g.dist {
	case DistUniform:
		return now + g.rng.ExpFloat64()/g.rate, int32(g.rng.Intn(int(g.space)))
	case DistZipf:
		return now + g.rng.ExpFloat64()/g.rate, int32(g.zipf.Uint64())
	default: // DistBursty
		for {
			r := g.offRate
			if g.burstOn {
				r = g.onRate
			}
			dt := g.rng.ExpFloat64() / r
			if now+dt <= g.stateEnd {
				return now + dt, int32(g.zipf.Uint64())
			}
			// The candidate falls past the state boundary: discard it,
			// advance to the boundary, and redraw under the new rate.
			now = g.stateEnd
			g.burstOn = !g.burstOn
			mean := g.offMean
			if g.burstOn {
				mean = g.onMean
			}
			g.stateEnd = now + g.rng.ExpFloat64()*mean
		}
	}
}
