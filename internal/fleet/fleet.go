// Package fleet is a deterministic discrete-event simulation of a GPU
// cluster operated by the paper's online frequency selector: jobs arrive
// continuously (Poisson, Zipf-keyed, or bursty streams), each carrying a
// workload, a GPU count, and a deadline, onto hundreds of space-shared
// nodes. On every placement the planner resolves the job's predicted
// power/time curve through the shared core.PlanCache/Sweeper serving stack
// and assigns the lowest-energy operating point that still meets the
// job's deadline, falling back to the maximum clock (and a missed-deadline
// count) when none does — the setting of Ilager et al.'s data-driven
// deadline-aware scaling, driven by this repo's DNN-predicted curves.
//
// The engine is built to be measured: events are value records in a
// binary-heap slice ordered by (time, seq), job records recycle through a
// free-list, the backlog is a ring buffer, and every curve lookup is a
// binary search over a plan-cache-memoized index — after warmup the event
// loop performs zero heap allocations, which the engine verifies about
// itself (Result.LoopAllocs, measured with runtime.ReadMemStats around the
// steady segment).
//
// Determinism contract: a replication's outcome is a pure function of its
// seed. All randomness flows through one rand.Rand in a fixed draw order;
// event ties break on the monotone sequence number; nodes are scanned
// first-fit by index; the backlog is strictly FIFO. Parallelism never
// touches a running simulation — Config.Workers fans out independent
// replications (each seeded from the base seed and its replication index,
// each with its own plan cache) and aggregates them in replication order,
// so every Result is bit-identical for any worker count.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
)

// Config parameterizes a simulation.
type Config struct {
	// Nodes is the cluster size. Default 128.
	Nodes int
	// GPUsPerNode is each node's GPU capacity. Default 4.
	GPUsPerNode int
	// MaxJobGPUs bounds a job's GPU request (drawn uniformly in
	// [1, MaxJobGPUs]). Default and cap: GPUsPerNode.
	MaxJobGPUs int
	// Rate is the mean arrival rate in jobs per simulated second.
	Rate float64
	// Dist selects the arrival stream: DistUniform, DistZipf, DistBursty.
	// Default DistUniform.
	Dist string
	// Slack sets each job's deadline to
	// arrival + Slack × (predicted time at max clock). Default 1.5.
	Slack float64
	// MaxArrivals stops the arrival stream after this many jobs.
	// Duration stops it at this simulated time. At least one must be set;
	// whichever triggers first ends the stream, and the simulation then
	// drains every queued and running job.
	MaxArrivals int
	Duration    float64
	// Seed is the base seed; replication r runs on Seed + r*1000003.
	Seed int64
	// Warmup is how many arrivals are processed before the steady-state
	// measurement window (allocation and event counters) opens. Default
	// min(1000, MaxArrivals/10) when MaxArrivals is set, else 1000.
	Warmup int
	// Prewarm resolves every catalogue run through the plan cache before
	// the event loop starts, so the loop itself observes only cache hits.
	Prewarm bool
	// Replications is how many independently seeded simulations to run.
	// Default 1.
	Replications int
	// Workers bounds how many replications run concurrently; 0 means
	// GOMAXPROCS, 1 means serial. Results never depend on it.
	Workers int

	// Objective ranks operating points inside the plan cache (default
	// EDP); Threshold is Algorithm 1's performance bound (negative =
	// unconstrained, the default); Quantum, Capacity and Shards configure
	// the per-replication plan cache as in core.PlanCacheConfig.
	Objective objective.Objective
	Threshold float64
	Quantum   float64
	Capacity  int
	Shards    int
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes == 0 {
		c.Nodes = 128
	}
	if c.Nodes < 1 {
		return c, fmt.Errorf("fleet: node count %d < 1", c.Nodes)
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 4
	}
	if c.GPUsPerNode < 1 {
		return c, fmt.Errorf("fleet: GPUs per node %d < 1", c.GPUsPerNode)
	}
	if c.MaxJobGPUs == 0 || c.MaxJobGPUs > c.GPUsPerNode {
		c.MaxJobGPUs = c.GPUsPerNode
	}
	if c.MaxJobGPUs < 1 {
		return c, fmt.Errorf("fleet: max job GPUs %d < 1", c.MaxJobGPUs)
	}
	if c.Rate <= 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return c, fmt.Errorf("fleet: arrival rate %v must be a positive finite number", c.Rate)
	}
	switch c.Dist {
	case "":
		c.Dist = DistUniform
	case DistUniform, DistZipf, DistBursty:
	default:
		return c, fmt.Errorf("fleet: unknown arrival distribution %q (want %s, %s or %s)", c.Dist, DistUniform, DistZipf, DistBursty)
	}
	if c.Slack == 0 {
		c.Slack = 1.5
	}
	if c.Slack < 0 {
		return c, fmt.Errorf("fleet: negative deadline slack %v", c.Slack)
	}
	if c.MaxArrivals < 0 {
		return c, fmt.Errorf("fleet: negative arrival bound %d", c.MaxArrivals)
	}
	if c.Duration < 0 {
		return c, fmt.Errorf("fleet: negative duration %v", c.Duration)
	}
	if c.MaxArrivals == 0 && c.Duration == 0 {
		return c, errors.New("fleet: set MaxArrivals or Duration (the stream must end)")
	}
	if c.Warmup == 0 {
		c.Warmup = 1000
		if c.MaxArrivals > 0 && c.MaxArrivals/10 < c.Warmup {
			c.Warmup = c.MaxArrivals / 10
		}
	}
	if c.Warmup < 0 {
		return c, fmt.Errorf("fleet: negative warmup %d", c.Warmup)
	}
	if c.Replications == 0 {
		c.Replications = 1
	}
	if c.Replications < 1 {
		return c, fmt.Errorf("fleet: replication count %d < 1", c.Replications)
	}
	if c.Objective == nil {
		c.Objective = objective.EDP{}
	}
	if c.Threshold == 0 {
		c.Threshold = -1
	}
	return c, nil
}

// RepResult is one replication's outcome. The deterministic fields
// (counts, energy, Digest) are pure functions of the replication seed;
// the measured fields (wall time, throughput, latencies, LoopAllocs)
// describe the host that ran it.
type RepResult struct {
	Seed int64

	Arrivals   int64 // jobs that entered the system
	Completed  int64 // jobs that ran to departure (always == Arrivals after drain)
	Missed     int64 // jobs whose predicted finish exceeded their deadline
	Backfilled int64 // jobs placed from the backlog rather than on arrival

	Hits, Misses uint64 // plan-cache counters over the event loop (prewarm excluded)

	EnergyJ    float64 // predicted energy across all jobs at assigned points
	MaxEnergyJ float64 // same jobs pinned at the always-max reference

	Events int64  // arrivals + departures processed
	Digest uint64 // FNV-1a over every job's outcome, departure order

	WallSec       float64 // event-loop wall time
	EventsPerSec  float64
	LoopAllocs    uint64 // heap allocations inside the steady segment
	SteadyEvents  int64  // events inside the steady segment
	P50DecisionNs int64  // per-arrival planning latency percentiles
	P99DecisionNs int64

	latencies []int64
}

// Result aggregates a simulation's replications (in replication order).
type Result struct {
	Reps []RepResult

	Arrivals, Completed, Missed, Backfilled int64
	Hits, Misses                            uint64
	EnergyJ, MaxEnergyJ                     float64
	Events                                  int64
	Digest                                  uint64 // FNV-1a over the replication digests, in order

	WallSec       float64 // summed replication wall time (single-threaded equivalent)
	EventsPerSec  float64 // Events / WallSec
	LoopAllocs    uint64
	SteadyEvents  int64
	P50DecisionNs int64 // percentiles over every replication's arrivals
	P99DecisionNs int64
}

// HitRatio returns the plan-cache hit fraction over the event loop.
func (r Result) HitRatio() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// EnergySavedPct returns the predicted energy saving versus running every
// job at the maximum clock, in percent.
func (r Result) EnergySavedPct() float64 {
	if r.MaxEnergyJ == 0 {
		return 0
	}
	return (r.MaxEnergyJ - r.EnergyJ) / r.MaxEnergyJ * 100
}

// MissRate returns the fraction of jobs that missed their deadline.
func (r Result) MissRate() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.Completed)
}

// Sim is a configured simulation, ready to Run any number of times.
type Sim struct {
	sw   *core.Sweeper
	runs []dcgm.Run
	cfg  Config
}

// New validates the configuration and workload catalogue against the
// sweeper. Each catalogue run is collapsed to its mean sample once here —
// the mean of a single sample is itself, bit for bit, so plan-cache keys
// and selections are unchanged while the per-arrival key computation stops
// depending on the recorded sample count.
func New(sw *core.Sweeper, runs []dcgm.Run, cfg Config) (*Sim, error) {
	if sw == nil {
		return nil, errors.New("fleet: sweeper is required")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, errors.New("fleet: empty workload catalogue")
	}
	collapsed := make([]dcgm.Run, len(runs))
	for i, r := range runs {
		if err := sw.ValidateRun(r); err != nil {
			return nil, fmt.Errorf("fleet: catalogue run %d: %w", i, err)
		}
		cr := r
		cr.Samples = []dcgm.Sample{r.MeanSample()}
		collapsed[i] = cr
	}
	return &Sim{sw: sw, runs: collapsed, cfg: cfg}, nil
}

// Run executes every replication and aggregates their results in
// replication order. It is safe to call repeatedly; each call produces
// the same deterministic fields.
func (s *Sim) Run() (Result, error) {
	reps := make([]RepResult, s.cfg.Replications)
	errs := make([]error, s.cfg.Replications)

	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reps) {
		workers = len(reps)
	}
	if workers <= 1 {
		for i := range reps {
			reps[i], errs[i] = s.runRep(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					reps[i], errs[i] = s.runRep(i)
				}
			}()
		}
		for i := range reps {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	res := Result{Reps: reps, Digest: fnvOffset}
	var lats []int64
	for i := range reps {
		r := &reps[i]
		res.Arrivals += r.Arrivals
		res.Completed += r.Completed
		res.Missed += r.Missed
		res.Backfilled += r.Backfilled
		res.Hits += r.Hits
		res.Misses += r.Misses
		res.EnergyJ += r.EnergyJ
		res.MaxEnergyJ += r.MaxEnergyJ
		res.Events += r.Events
		res.WallSec += r.WallSec
		res.LoopAllocs += r.LoopAllocs
		res.SteadyEvents += r.SteadyEvents
		res.Digest = fnvMix(res.Digest, r.Digest)
		lats = append(lats, r.latencies...)
		r.latencies = nil
	}
	if res.WallSec > 0 {
		res.EventsPerSec = float64(res.Events) / res.WallSec
	}
	res.P50DecisionNs, res.P99DecisionNs = latencyPercentiles(lats)
	return res, nil
}

// engine is one replication's mutable state.
type engine struct {
	sim *Sim
	pc  *core.PlanCache

	gen     *arrivalGen
	rng     *rand.Rand
	heap    eventHeap
	nodes   []int32 // free GPUs per node
	jobs    []job
	free    []int32
	backlog intRing

	now        float64
	arrivals   int64
	completed  int64
	missed     int64
	backfilled int64
	energyJ    float64
	refJ       float64
	digest     uint64
	latencies  []int64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a accumulator, byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func (s *Sim) runRep(rep int) (RepResult, error) {
	cfg := s.cfg
	seed := cfg.Seed + int64(rep)*1000003
	rng := rand.New(rand.NewSource(seed))
	gen, err := newArrivalGen(cfg.Dist, cfg.Rate, len(s.runs), rng)
	if err != nil {
		return RepResult{}, err
	}
	pc, err := core.NewPlanCache(s.sw, core.PlanCacheConfig{
		Objective: cfg.Objective,
		Threshold: cfg.Threshold,
		Quantum:   cfg.Quantum,
		Capacity:  cfg.Capacity,
		Shards:    cfg.Shards,
		Derive: func(profiles []objective.Profile, sel core.Selection) any {
			return BuildCurve(profiles, sel)
		},
	})
	if err != nil {
		return RepResult{}, err
	}

	slots := cfg.Nodes * cfg.GPUsPerNode
	latCap := cfg.MaxArrivals
	if latCap == 0 {
		latCap = int(cfg.Rate*cfg.Duration*5/4) + 1024
	}
	e := &engine{
		sim:       s,
		pc:        pc,
		gen:       gen,
		rng:       rng,
		nodes:     make([]int32, cfg.Nodes),
		jobs:      make([]job, 0, slots+1024),
		free:      make([]int32, 0, slots+1024),
		digest:    fnvOffset,
		latencies: make([]int64, 0, latCap),
	}
	e.heap.ev = make([]event, 0, slots+8)
	e.backlog.buf = make([]int32, 1024)
	for i := range e.nodes {
		e.nodes[i] = int32(cfg.GPUsPerNode)
	}

	if cfg.Prewarm {
		for _, r := range s.runs {
			if _, _, _, err := pc.SelectDerived(r); err != nil {
				return RepResult{}, fmt.Errorf("fleet: prewarm: %w", err)
			}
		}
	}
	base := pc.Stats()

	// The event loop. One pending arrival event lives in the heap at a
	// time; processing it draws the next. Departures free GPUs and pull
	// from the FIFO backlog.
	t0, key0 := gen.next(0)
	if cfg.Duration == 0 || t0 <= cfg.Duration {
		e.heap.push(t0, evArrival, key0)
	}

	var (
		events      int64
		snapped     bool
		memBefore   runtime.MemStats
		memAfter    runtime.MemStats
		steadyStart int64
		selErr      error
	)
	start := time.Now()
	for len(e.heap.ev) > 0 {
		ev := e.heap.pop()
		e.now = ev.t
		events++
		if ev.kind == evArrival {
			// ev.job carries the workload key for arrival events.
			if err := e.arrive(ev.job); err != nil {
				selErr = err
				break
			}
			if e.arrivals < int64(cfg.MaxArrivals) || cfg.MaxArrivals == 0 {
				nt, nk := gen.next(e.now)
				if cfg.Duration == 0 || nt <= cfg.Duration {
					e.heap.push(nt, evArrival, nk)
				}
			}
			if !snapped && e.arrivals >= int64(cfg.Warmup) {
				snapped = true
				runtime.ReadMemStats(&memBefore)
				steadyStart = events
			}
		} else {
			e.depart(ev.job)
		}
	}
	wall := time.Since(start)
	if selErr != nil {
		return RepResult{}, selErr
	}
	runtime.ReadMemStats(&memAfter)

	stats := pc.Stats()
	r := RepResult{
		Seed:       seed,
		Arrivals:   e.arrivals,
		Completed:  e.completed,
		Missed:     e.missed,
		Backfilled: e.backfilled,
		Hits:       stats.Hits - base.Hits,
		Misses:     stats.Misses - base.Misses,
		EnergyJ:    e.energyJ,
		MaxEnergyJ: e.refJ,
		Events:     events,
		Digest:     e.digest,
		WallSec:    wall.Seconds(),
		latencies:  e.latencies,
	}
	if snapped {
		r.LoopAllocs = memAfter.Mallocs - memBefore.Mallocs
		r.SteadyEvents = events - steadyStart
	}
	if r.WallSec > 0 {
		r.EventsPerSec = float64(events) / r.WallSec
	}
	r.P50DecisionNs, r.P99DecisionNs = latencyPercentiles(e.latencies)
	return r, nil
}

// arrive admits one job: resolve its plan curve through the cache, stamp
// its deadline, and either place it immediately or append it to the FIFO
// backlog.
func (e *engine) arrive(key int32) error {
	cfg := &e.sim.cfg
	t0 := time.Now()
	_, derived, _, err := e.pc.SelectDerived(e.sim.runs[key])
	lat := time.Since(t0)
	if err != nil {
		return fmt.Errorf("fleet: planning arrival %d: %w", e.arrivals, err)
	}
	if len(e.latencies) < cap(e.latencies) {
		e.latencies = append(e.latencies, int64(lat))
	}
	curve := derived.(*Curve)

	gpus := int32(1)
	if cfg.MaxJobGPUs > 1 {
		gpus = 1 + int32(e.rng.Intn(cfg.MaxJobGPUs))
	}

	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.jobs = append(e.jobs, job{})
		slot = int32(len(e.jobs) - 1)
	}
	j := &e.jobs[slot]
	*j = job{
		id:       e.arrivals,
		key:      key,
		gpus:     gpus,
		node:     -1,
		curve:    curve,
		arrive:   e.now,
		deadline: e.now + cfg.Slack*curve.ref.TimeSec,
	}
	e.arrivals++

	if !e.place(slot) {
		j.queued = true
		e.backlog.push(slot)
	}
	return nil
}

// place finds the lowest-index node with enough free GPUs, picks the
// job's operating point against its remaining deadline budget, and
// schedules the departure. It reports false when no node fits.
func (e *engine) place(slot int32) bool {
	j := &e.jobs[slot]
	node := int32(-1)
	for i := range e.nodes {
		if e.nodes[i] >= j.gpus {
			node = int32(i)
			break
		}
	}
	if node < 0 {
		return false
	}
	e.nodes[node] -= j.gpus
	j.node = node
	j.start = e.now

	p, feasible := j.curve.Choose(j.deadline - e.now)
	j.freq = p.FreqMHz
	j.memFreq = p.MemFreqMHz
	j.finish = e.now + p.TimeSec
	j.missed = !feasible || j.finish > j.deadline
	g := float64(j.gpus)
	j.energyJ = p.TimeSec * p.PowerWatts * g
	j.refJ = j.curve.ref.TimeSec * j.curve.ref.PowerWatts * g
	e.heap.push(j.finish, evDeparture, slot)
	return true
}

// depart retires a finished job — outcome accounting, digest fold, GPU
// release — then backfills the FIFO backlog head-first until a job does
// not fit (strict FIFO: the engine never skips past a blocked head).
func (e *engine) depart(slot int32) {
	j := &e.jobs[slot]
	e.completed++
	if j.missed {
		e.missed++
	}
	if j.queued {
		e.backfilled++
	}
	e.energyJ += j.energyJ
	e.refJ += j.refJ

	h := e.digest
	h = fnvMix(h, uint64(j.id))
	h = fnvMix(h, uint64(j.key))
	h = fnvMix(h, uint64(j.gpus))
	h = fnvMix(h, uint64(j.node))
	h = fnvMix(h, math.Float64bits(j.start))
	h = fnvMix(h, math.Float64bits(j.finish))
	h = fnvMix(h, math.Float64bits(j.freq))
	h = fnvMix(h, math.Float64bits(j.memFreq))
	var missBit uint64
	if j.missed {
		missBit = 1
	}
	e.digest = fnvMix(h, missBit)

	e.nodes[j.node] += j.gpus
	e.free = append(e.free, slot)

	for e.backlog.len() > 0 {
		head := e.backlog.peek()
		if !e.place(head) {
			break
		}
		e.backlog.pop()
	}
}

// latencyPercentiles returns the p50 and p99 of the recorded per-arrival
// planning latencies, in nanoseconds.
func latencyPercentiles(lats []int64) (p50, p99 int64) {
	if len(lats) == 0 {
		return 0, 0
	}
	s := append([]int64(nil), lats...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	pick := func(q float64) int64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return pick(0.50), pick(0.99)
}
