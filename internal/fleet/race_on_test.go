//go:build race

package fleet

// raceEnabled reports whether the race detector instruments this build.
// Its runtime allocates inside instrumented loops, so the zero-alloc
// steady-state assertion only holds in non-race builds.
const raceEnabled = true
