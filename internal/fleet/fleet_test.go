package fleet

import (
	"math"
	"math/rand"
	"testing"

	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/nn"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/stats"
)

// fleetModels builds paper-shaped models with random (untrained) weights —
// the simulation's structure does not depend on training quality.
func fleetModels(tb testing.TB) *core.Models {
	tb.Helper()
	arch := sim.GA100().Spec()
	power, err := nn.NewNetwork(nn.PaperArch(3), 1)
	if err != nil {
		tb.Fatal(err)
	}
	tmodel, err := nn.NewNetwork(nn.PaperArch(3), 2)
	if err != nil {
		tb.Fatal(err)
	}
	return &core.Models{
		Features:   []string{"fp_active", "dram_active", "sm_app_clock"},
		Scaler:     &stats.StandardScaler{Means: []float64{0.4, 0.3, 0.7}, Stds: []float64{0.2, 0.15, 0.25}},
		Power:      power,
		Time:       tmodel,
		TrainedOn:  arch.Name,
		TDPWatts:   arch.TDPWatts,
		MaxFreqMHz: arch.MaxFreqMHz,
	}
}

func fleetSweeper(tb testing.TB) *core.Sweeper {
	tb.Helper()
	arch := sim.GA100().Spec()
	sw, err := fleetModels(tb).NewSweeper(arch, arch.DesignClocks())
	if err != nil {
		tb.Fatal(err)
	}
	return sw
}

// stableRate returns an arrival rate that loads a cluster at frac of its
// service capacity, estimated from the catalogue's predicted service
// times. The deadline rule bounds a job's service at slack × its
// predicted reference time, so sizing against that keeps the in-flight
// population — and every grow-only engine buffer — bounded, which is the
// precondition for the 0-allocs steady state. (An overloaded cluster's
// backlog grows without bound, and with it the job table.)
func stableRate(tb testing.TB, sw *core.Sweeper, runs []dcgm.Run, nodes, gpusPerNode, maxJobGPUs int, slack, frac float64) float64 {
	tb.Helper()
	meanT := 0.0
	for _, r := range runs {
		profs, _, err := sw.PredictProfile(r)
		if err != nil {
			tb.Fatal(err)
		}
		meanT += BuildCurve(profs, core.Selection{}).Ref().TimeSec
	}
	meanT /= float64(len(runs))
	meanGPUs := (1 + float64(maxJobGPUs)) / 2
	capacity := float64(nodes * gpusPerNode)
	return frac * capacity / (meanGPUs * slack * meanT)
}

// catalogueRuns builds n max-clock profiling runs whose quantized feature
// vectors never collide — n distinct workload characters.
func catalogueRuns(n int) []dcgm.Run {
	runs := make([]dcgm.Run, n)
	for i := range runs {
		runs[i] = dcgm.Run{
			Workload:    "wl",
			FreqMHz:     1410,
			ExecTimeSec: 1 + 0.01*float64(i%7),
			Samples: []dcgm.Sample{{
				FP32Active:    0.05 + 0.17*float64(i%257),
				DRAMActive:    0.10 + 0.19*float64(i/257),
				SMAppClockMHz: 1410,
			}},
		}
	}
	return runs
}

func TestEventHeapOrders(t *testing.T) {
	var h eventHeap
	rng := rand.New(rand.NewSource(3))
	const n = 2000
	times := make([]float64, n)
	for i := range times {
		// Coarse times force plenty of exact ties, exercising the seq
		// tiebreak.
		times[i] = float64(rng.Intn(50))
	}
	for i, tm := range times {
		h.push(tm, evArrival, int32(i))
	}
	lastT, lastSeq := math.Inf(-1), uint64(0)
	for i := 0; i < n; i++ {
		ev := h.pop()
		if ev.t < lastT {
			t.Fatalf("pop %d went backwards in time: %v after %v", i, ev.t, lastT)
		}
		if ev.t == lastT && ev.seq < lastSeq {
			t.Fatalf("pop %d broke the seq tiebreak: seq %d after %d at t=%v", i, ev.seq, lastSeq, ev.t)
		}
		lastT, lastSeq = ev.t, ev.seq
	}
	if len(h.ev) != 0 {
		t.Fatalf("%d events left after draining", len(h.ev))
	}
}

func TestIntRingFIFO(t *testing.T) {
	var r intRing
	r.buf = make([]int32, 4)
	next := int32(0)
	want := int32(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			r.push(next)
			next++
		}
		if round%3 == 0 {
			continue // let it grow past the initial capacity
		}
		for r.len() > 2 {
			if got := r.pop(); got != want {
				t.Fatalf("pop = %d, want FIFO order %d", got, want)
			}
			want++
		}
	}
	for r.len() > 0 {
		if got := r.pop(); got != want {
			t.Fatalf("drain pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d values, pushed %d", want, next)
	}
}

// TestCurveChoose pins the deadline-feasibility rule on a hand-built
// curve: min-energy among feasible points, reference fallback when none
// fit.
func TestCurveChoose(t *testing.T) {
	profiles := []objective.Profile{
		{FreqMHz: 1410, TimeSec: 1.0, PowerWatts: 300}, // E=300, ref
		{FreqMHz: 1200, TimeSec: 1.2, PowerWatts: 200}, // E=240
		{FreqMHz: 900, TimeSec: 1.5, PowerWatts: 180},  // E=270
		{FreqMHz: 510, TimeSec: 2.5, PowerWatts: 90},   // E=225
	}
	c := BuildCurve(profiles, core.Selection{})

	cases := []struct {
		budget   float64
		wantFreq float64
		feasible bool
	}{
		{3.0, 510, true},  // everything fits: global min energy
		{2.0, 1200, true}, // 510 too slow; 1200 MHz is min-energy feasible
		{1.4, 1200, true},
		{1.1, 1410, true}, // only the max clock fits
		{0.5, 1410, false},
		{-1, 1410, false},
		{math.NaN(), 1410, false},
	}
	for _, tc := range cases {
		p, feasible := c.Choose(tc.budget)
		if p.FreqMHz != tc.wantFreq || feasible != tc.feasible {
			t.Fatalf("Choose(%v) = (%v MHz, %v), want (%v MHz, %v)", tc.budget, p.FreqMHz, feasible, tc.wantFreq, tc.feasible)
		}
	}
	if c.Ref().FreqMHz != 1410 {
		t.Fatalf("Ref = %v MHz, want the max clock", c.Ref().FreqMHz)
	}
}

// TestArrivalGenDeterministic pins that a generator's stream is a pure
// function of its seed, for every distribution.
func TestArrivalGenDeterministic(t *testing.T) {
	for _, dist := range []string{DistUniform, DistZipf, DistBursty} {
		stream := func() ([]float64, []int32) {
			g, err := newArrivalGen(dist, 10, 64, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			var ts []float64
			var ks []int32
			now := 0.0
			for i := 0; i < 500; i++ {
				tm, k := g.next(now)
				if tm <= now {
					t.Fatalf("%s: arrival %d does not advance time: %v -> %v", dist, i, now, tm)
				}
				if k < 0 || k >= 64 {
					t.Fatalf("%s: key %d out of range", dist, k)
				}
				ts = append(ts, tm)
				ks = append(ks, k)
				now = tm
			}
			return ts, ks
		}
		t1, k1 := stream()
		t2, k2 := stream()
		for i := range t1 {
			if t1[i] != t2[i] || k1[i] != k2[i] {
				t.Fatalf("%s: streams diverge at %d", dist, i)
			}
		}
	}
}

func TestArrivalGenRejectsUnknownDist(t *testing.T) {
	if _, err := newArrivalGen("pareto", 1, 8, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	sw := fleetSweeper(t)
	runs := catalogueRuns(4)
	bad := []Config{
		{},                          // no rate
		{Rate: 5},                   // neither MaxArrivals nor Duration
		{Rate: -1, MaxArrivals: 10}, // negative rate
		{Rate: 5, MaxArrivals: -1},  // negative bound
		{Rate: 5, Duration: -2},     // negative duration
		{Rate: 5, MaxArrivals: 10, Nodes: -3},
		{Rate: 5, MaxArrivals: 10, Dist: "pareto"},
		{Rate: 5, MaxArrivals: 10, Slack: -0.5},
	}
	for i, cfg := range bad {
		s, err := New(sw, runs, cfg)
		if err == nil {
			if _, rerr := s.Run(); rerr == nil {
				t.Fatalf("bad config %d accepted: %+v", i, cfg)
			}
		}
	}
	if _, err := New(sw, nil, Config{Rate: 5, MaxArrivals: 10}); err == nil {
		t.Fatal("empty catalogue accepted")
	}
	if _, err := New(nil, runs, Config{Rate: 5, MaxArrivals: 10}); err == nil {
		t.Fatal("nil sweeper accepted")
	}
	if _, err := New(sw, []dcgm.Run{{FreqMHz: 900}}, Config{Rate: 5, MaxArrivals: 10}); err == nil {
		t.Fatal("invalid catalogue run accepted")
	}
}

// TestSimulateConserves checks the bookkeeping identities every run must
// satisfy: the stream ends, every arrival departs, energy accounting is
// positive, and the always-max baseline dominates the planned energy.
func TestSimulateConserves(t *testing.T) {
	sw := fleetSweeper(t)
	s, err := New(sw, catalogueRuns(32), Config{
		Nodes: 16, GPUsPerNode: 4, Rate: 40, Dist: DistZipf,
		MaxArrivals: 3000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrivals != 3000 {
		t.Fatalf("Arrivals = %d, want 3000", r.Arrivals)
	}
	if r.Completed != r.Arrivals {
		t.Fatalf("Completed = %d, Arrivals = %d: jobs were lost", r.Completed, r.Arrivals)
	}
	if r.Events != 2*r.Arrivals {
		t.Fatalf("Events = %d, want one arrival + one departure per job = %d", r.Events, 2*r.Arrivals)
	}
	if got := r.Hits + r.Misses; got != uint64(r.Arrivals) {
		t.Fatalf("cache saw %d lookups for %d arrivals", got, r.Arrivals)
	}
	if r.EnergyJ <= 0 || r.MaxEnergyJ <= 0 {
		t.Fatalf("non-positive energy accounting: %v / %v", r.EnergyJ, r.MaxEnergyJ)
	}
	if r.EnergyJ > r.MaxEnergyJ*(1+1e-12) {
		t.Fatalf("planned energy %v exceeds the always-max baseline %v", r.EnergyJ, r.MaxEnergyJ)
	}
	if r.Missed < 0 || r.Missed > r.Completed {
		t.Fatalf("Missed = %d out of %d", r.Missed, r.Completed)
	}
}

// TestSimulateDeadlines checks the deadline rule end to end: generous
// slack under light load misses nothing, and a slack far below the
// fastest point's predicted time misses everything.
func TestSimulateDeadlines(t *testing.T) {
	sw := fleetSweeper(t)
	runs := catalogueRuns(8)

	relaxed, err := New(sw, runs, Config{
		Nodes: 64, Rate: 2, Slack: 10, MaxArrivals: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := relaxed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Missed != 0 {
		t.Fatalf("light load with 10x slack missed %d deadlines", r.Missed)
	}

	impossible, err := New(sw, runs, Config{
		Nodes: 64, Rate: 2, Slack: 1e-9, MaxArrivals: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err = impossible.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Missed != r.Completed {
		t.Fatalf("impossible slack missed %d of %d", r.Missed, r.Completed)
	}
}

// TestSimulateWorkerInvariance is the determinism contract: the same
// configuration produces bit-identical deterministic fields for any
// worker count, because workers parallelize whole replications.
func TestSimulateWorkerInvariance(t *testing.T) {
	sw := fleetSweeper(t)
	runs := catalogueRuns(64)
	results := map[int]Result{}
	for _, workers := range []int{1, 4, 16} {
		s, err := New(sw, runs, Config{
			Nodes: 32, Rate: 30, Dist: DistBursty,
			MaxArrivals: 1500, Seed: 17,
			Replications: 8, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		results[workers] = r
	}
	base := results[1]
	for _, workers := range []int{4, 16} {
		r := results[workers]
		if r.Digest != base.Digest {
			t.Fatalf("digest at %d workers = %x, at 1 worker = %x", workers, r.Digest, base.Digest)
		}
		if r.Arrivals != base.Arrivals || r.Completed != base.Completed ||
			r.Missed != base.Missed || r.Backfilled != base.Backfilled {
			t.Fatalf("counts diverge at %d workers: %+v vs %+v", workers, r, base)
		}
		if math.Float64bits(r.EnergyJ) != math.Float64bits(base.EnergyJ) ||
			math.Float64bits(r.MaxEnergyJ) != math.Float64bits(base.MaxEnergyJ) {
			t.Fatalf("energy diverges at %d workers", workers)
		}
		if r.Hits != base.Hits || r.Misses != base.Misses {
			t.Fatalf("cache counters diverge at %d workers", workers)
		}
		for i := range r.Reps {
			if r.Reps[i].Digest != base.Reps[i].Digest {
				t.Fatalf("replication %d digest diverges at %d workers", i, workers)
			}
		}
	}
}

// TestSimulateRepeatable: two Runs of the same Sim agree bit for bit.
func TestSimulateRepeatable(t *testing.T) {
	sw := fleetSweeper(t)
	s, err := New(sw, catalogueRuns(16), Config{
		Nodes: 8, Rate: 25, Dist: DistUniform, Duration: 40, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.Arrivals != b.Arrivals || a.Missed != b.Missed {
		t.Fatalf("repeated Run diverged: %+v vs %+v", a, b)
	}
}

// TestSimulateSteadyStateZeroAlloc is the perf contract the benchmarks
// publish: with the catalogue prewarmed, the event loop's steady segment
// performs no heap allocations.
func TestSimulateSteadyStateZeroAlloc(t *testing.T) {
	sw := fleetSweeper(t)
	runs := catalogueRuns(64)
	rate := stableRate(t, sw, runs, 32, 4, 4, 1.5, 0.6)
	s, err := New(sw, runs, Config{
		Nodes: 32, Rate: rate, Dist: DistZipf,
		MaxArrivals: 20000, Warmup: 2000, Prewarm: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.SteadyEvents == 0 {
		t.Fatal("steady segment never opened")
	}
	if r.LoopAllocs != 0 && !raceEnabled {
		t.Fatalf("steady-state event loop allocated %d times over %d events", r.LoopAllocs, r.SteadyEvents)
	}
	if r.Misses != 0 {
		t.Fatalf("prewarmed run still missed the cache %d times", r.Misses)
	}
}

// TestSimulateBacklogBackfills forces queueing (tiny cluster, high rate)
// and checks that blocked jobs are eventually backfilled in FIFO order
// rather than lost.
func TestSimulateBacklogBackfills(t *testing.T) {
	sw := fleetSweeper(t)
	s, err := New(sw, catalogueRuns(8), Config{
		Nodes: 2, GPUsPerNode: 2, Rate: 100, MaxArrivals: 400, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Backfilled == 0 {
		t.Fatal("overloaded cluster never backfilled from the backlog")
	}
	if r.Completed != r.Arrivals {
		t.Fatalf("backlogged jobs lost: %d of %d completed", r.Completed, r.Arrivals)
	}
}
