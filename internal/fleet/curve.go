package fleet

import (
	"math"
	"sort"

	"gpudvfs/internal/core"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/sched"
)

// Curve is one workload bucket's deadline-feasibility index: the plan
// curve's operating points re-sorted by predicted time, with a prefix
// minimum-energy index on top. Built once per plan-cache bucket (through
// PlanCacheConfig.Derive) and consulted on every placement, it answers
// "the lowest-energy operating point that finishes within budget t" with
// one binary search and zero allocations.
type Curve struct {
	// points is sched.PlanCurve's output re-sorted ascending by predicted
	// TimeSec (ties broken by energy, then core and memory frequency, so
	// the index is deterministic for any input order).
	points []objective.Profile
	// energy[i] is points[i].Energy(), precomputed.
	energy []float64
	// minAt[i] indexes the minimum-energy point within points[:i+1] — the
	// answer for any time budget that admits exactly points[:i+1].
	minAt []int
	// ref is the default-clock reference endpoint (max core, then max
	// memory): the fallback operating point when no curve point meets the
	// deadline, and the "always max" baseline energy accounting compares
	// against.
	ref objective.Profile
}

// BuildCurve derives a feasibility index from a predicted profile set.
// The signature matches core.PlanCacheConfig.Derive so a plan cache can
// memoize one Curve per workload bucket:
//
//	Derive: func(p []objective.Profile, sel core.Selection) any {
//		return fleet.BuildCurve(p, sel)
//	}
//
// The profiles slice is read, never modified or retained.
func BuildCurve(profiles []objective.Profile, _ core.Selection) *Curve {
	pts := sched.PlanCurve(profiles)
	c := &Curve{
		points: pts,
		energy: make([]float64, len(pts)),
		minAt:  make([]int, len(pts)),
		ref:    pts[len(pts)-1],
	}
	sort.Slice(c.points, func(a, b int) bool {
		pa, pb := c.points[a], c.points[b]
		if pa.TimeSec != pb.TimeSec {
			return pa.TimeSec < pb.TimeSec
		}
		ea, eb := pa.Energy(), pb.Energy()
		if ea != eb {
			return ea < eb
		}
		if pa.FreqMHz != pb.FreqMHz {
			return pa.FreqMHz < pb.FreqMHz
		}
		return pa.MemFreqMHz < pb.MemFreqMHz
	})
	best := 0
	for i, p := range c.points {
		c.energy[i] = p.Energy()
		if c.energy[i] < c.energy[best] {
			best = i
		}
		c.minAt[i] = best
	}
	return c
}

// Choose returns the lowest-energy operating point whose predicted time
// fits within budget seconds. feasible is false when even the fastest
// point exceeds the budget (or the budget is not positive); the returned
// point is then the default-clock reference — run flat out and take the
// deadline miss. Choose never allocates.
func (c *Curve) Choose(budget float64) (p objective.Profile, feasible bool) {
	if budget <= 0 || math.IsNaN(budget) || c.points[0].TimeSec > budget {
		return c.ref, false
	}
	// Binary search the last point with TimeSec <= budget; the prefix up
	// to it is exactly the feasible set.
	lo, hi := 0, len(c.points)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.points[mid].TimeSec <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return c.points[c.minAt[lo]], true
}

// Ref returns the default-clock reference point — the always-max baseline.
func (c *Curve) Ref() objective.Profile { return c.ref }

// Len returns the number of operating points on the curve.
func (c *Curve) Len() int { return len(c.points) }
