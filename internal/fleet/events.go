package fleet

// eventKind discriminates the two things that happen in the simulation.
type eventKind uint8

const (
	evArrival eventKind = iota
	evDeparture
)

// event is one scheduled occurrence. Events are value types inside the
// heap's backing slice — no per-event heap object, no interface boxing —
// and are ordered by (time, seq): seq is a monotone counter assigned at
// push, so simultaneous events always replay in the order they were
// scheduled. That pair is the engine's total order, and it is what makes
// the simulation deterministic.
type event struct {
	t    float64
	seq  uint64
	kind eventKind
	job  int32 // job slot for departures; the workload key for arrivals
}

// eventHeap is a binary min-heap over a value slice. It reimplements the
// sift operations instead of wrapping container/heap because the interface
// methods would force the slice header through an interface value and the
// Pop contract would churn the tail — this version does nothing but move
// struct values inside one backing array.
type eventHeap struct {
	ev  []event
	seq uint64
}

func (h *eventHeap) less(a, b int) bool {
	if h.ev[a].t != h.ev[b].t {
		return h.ev[a].t < h.ev[b].t
	}
	return h.ev[a].seq < h.ev[b].seq
}

// push schedules an event, stamping its sequence number.
func (h *eventHeap) push(t float64, kind eventKind, job int32) {
	h.ev = append(h.ev, event{t: t, seq: h.seq, kind: kind, job: job})
	h.seq++
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event. Callers check len first.
func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.less(r, l) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h.ev[i], h.ev[c] = h.ev[c], h.ev[i]
		i = c
	}
	return top
}

// job is one arrival's lifecycle record. Records live in the engine's
// grow-only jobs slice and are recycled through a free-list of slot
// indices, so the steady-state loop never allocates one.
type job struct {
	id       int64
	key      int32
	gpus     int32
	node     int32
	missed   bool
	queued   bool // placed from the backlog rather than on arrival
	curve    *Curve
	arrive   float64
	deadline float64
	start    float64
	finish   float64
	freq     float64
	memFreq  float64
	energyJ  float64 // predicted energy at the assigned point, all GPUs
	refJ     float64 // predicted energy at the always-max reference
}

// intRing is a FIFO ring buffer of job slots — the global backlog. It
// grows by doubling when full (warmup-time only under a stable load) and
// never shrinks.
type intRing struct {
	buf  []int32
	head int
	n    int
}

func (r *intRing) len() int { return r.n }

func (r *intRing) push(v int32) {
	if r.n == len(r.buf) {
		grown := make([]int32, 2*len(r.buf)+8)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// peek returns the oldest slot without removing it.
func (r *intRing) peek() int32 { return r.buf[r.head] }

func (r *intRing) pop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}
