package fleet

import (
	"fmt"
	"testing"

	"gpudvfs/internal/backend"
	"gpudvfs/internal/backend/replay"
	"gpudvfs/internal/dcgm"
)

// benchCatalogue builds the workload catalogue the way a deployment
// would: a recorded max-clock campaign is mounted behind the replay
// backend and each workload is profiled through the standard online-phase
// acquisition (dcgm.ProfileAtMax). The trace carries n distinct workload
// characters spread over the quantized feature space.
func benchCatalogue(b *testing.B, n int) []dcgm.Run {
	b.Helper()
	rec := make([]backend.Run, n)
	for i := range rec {
		rec[i] = backend.Run{
			Workload:      fmt.Sprintf("wl-%03d", i),
			Arch:          "GA100",
			FreqMHz:       1410,
			ExecTimeSec:   1 + 0.01*float64(i%17),
			AvgPowerWatts: 250,
			Samples: []backend.Sample{{
				FP32Active:    0.05 + 0.17*float64(i%257),
				DRAMActive:    0.10 + 0.19*float64(i/257),
				SMAppClockMHz: 1410,
				PowerUsage:    250,
			}},
		}
	}
	dev, err := replay.New(rec, replay.Options{})
	if err != nil {
		b.Fatal(err)
	}
	coll := dcgm.NewCollector(dev, dcgm.Config{})
	runs := make([]dcgm.Run, n)
	for i := range rec {
		run, err := coll.ProfileAtMax(backend.Named(rec[i].Workload))
		if err != nil {
			b.Fatal(err)
		}
		runs[i] = run
	}
	return runs
}

// benchFleet replays `arrivals` online arrivals through the serving hot
// path and reports the engine's self-measured metrics. One benchmark
// iteration is one full simulation; the interesting numbers are the
// per-iteration ReportMetric series, not ns/op.
func benchFleet(b *testing.B, dist string, arrivals int) {
	sw := fleetSweeper(b)
	runs := benchCatalogue(b, 512)
	rate := stableRate(b, sw, runs, 256, 4, 4, 1.5, 0.6)
	s, err := New(sw, runs, Config{
		Nodes: 256, GPUsPerNode: 4, Rate: rate, Dist: dist,
		MaxArrivals: arrivals, Warmup: arrivals / 10,
		Prewarm: true, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last Result
	for i := 0; i < b.N; i++ {
		r, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if r.LoopAllocs != 0 {
			b.Fatalf("steady-state event loop allocated %d times", r.LoopAllocs)
		}
		last = r
	}
	b.ReportMetric(float64(last.Arrivals)/last.WallSec, "arrivals/sec")
	b.ReportMetric(last.EventsPerSec, "events/sec")
	b.ReportMetric(float64(last.LoopAllocs), "loop-allocs")
	b.ReportMetric(last.HitRatio(), "hit-ratio")
	b.ReportMetric(last.MissRate(), "miss-rate")
	b.ReportMetric(last.EnergySavedPct(), "energy-saved-%")
	b.ReportMetric(float64(last.P50DecisionNs), "p50-decision-ns")
	b.ReportMetric(float64(last.P99DecisionNs), "p99-decision-ns")
}

func BenchmarkFleetUniform100k(b *testing.B) { benchFleet(b, DistUniform, 100_000) }
func BenchmarkFleetZipf100k(b *testing.B)    { benchFleet(b, DistZipf, 100_000) }
func BenchmarkFleetBursty100k(b *testing.B)  { benchFleet(b, DistBursty, 100_000) }

// BenchmarkFleetZipf1M is the long-haul arm: a million arrivals through
// one engine, the scale ROADMAP item 1 calls for. Excluded from smoke
// runs by the benchtime budget, included in BENCH_fleet.json.
func BenchmarkFleetZipf1M(b *testing.B) { benchFleet(b, DistZipf, 1_000_000) }
