// Runtime governor: the extension beyond the paper's one-shot online
// phase. A governed device runs a workload stream whose character changes
// mid-way (a molecular-dynamics phase hands over to a memory-bound
// analysis phase). The governor notices the feature drift against its
// profiling baseline and re-runs the online phase, landing on the new
// phase's optimal frequency — while an input-size change alone (which the
// paper shows does not move the features) triggers nothing.
//
// Run with: go run ./examples/governor
package main

import (
	"fmt"
	"log"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/governor"
	"gpudvfs/internal/workloads"
)

func main() {
	arch := sim.GA100()
	fmt.Println("training models on the benchmark suite...")
	offline, err := core.OfflineTrain(sim.New(arch, 42), backend.Workloads(workloads.TrainingSet()),
		dcgm.Config{Seed: 1}, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	dev := sim.New(arch, 7)
	cfg := governor.DefaultConfig()
	cfg.ReprofileAfter = 2
	gov, err := governor.New(dev, offline.Models, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A stream of production runs: 4 compute-bound MD runs, then the same
	// MD at 2x the problem size (not drift!), then a memory-bound
	// post-processing phase (drift).
	md := workloads.LAMMPS()
	mdBig, err := md.WithInputScale(2)
	if err != nil {
		log.Fatal(err)
	}
	post := workloads.STREAM()
	stream := []struct {
		label string
		app   sim.KernelProfile
	}{
		{"MD", md}, {"MD", md}, {"MD", md}, {"MD", md},
		{"MD(2x input)", mdBig}, {"MD(2x input)", mdBig},
		{"post-proc", post}, {"post-proc", post}, {"post-proc", post}, {"post-proc", post},
	}

	sel, err := gov.Tune(md)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial tune for MD: %.0f MHz (predicted energy %+.1f%%, time %+.1f%%)\n\n",
		sel.FreqMHz, sel.EnergyPct, sel.TimePct)

	fmt.Printf("%-14s %10s %10s %8s %8s\n", "run", "freq_mhz", "time_s", "drift", "retune")
	for _, step := range stream {
		out, err := gov.ProcessRun(step.app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.0f %10.2f %8v %8v\n", step.label, out.FreqMHz, out.TimeSec, out.Drifted, out.Retuned)
	}

	st := gov.Stats()
	fmt.Printf("\ngovernor stats: %d runs, %d drifted, %d re-tunes (of %d tunes total)\n",
		st.Runs, st.DriftedRuns, st.Retunes, st.Tunes)
	fmt.Printf("final frequency: %.0f MHz\n", gov.Selection().FreqMHz)
	fmt.Println("\nthe input-size change did not re-tune (features are size-invariant, §4.2.3);")
	fmt.Println("the character change did, landing on the memory-bound phase's optimum.")
}
