// HPC-center scenario: the situation that motivates the paper's intro.
//
// A center runs a mixed scientific/ML fleet on A100 nodes under a rack
// power budget. The sched.Planner profiles each job once (the paper's
// online phase), then assigns per-job frequencies by greedy marginal
// analysis — stepping down whichever job buys the most watts per unit of
// predicted slowdown — until the fleet fits the budget, while respecting
// each job's performance threshold. The example compares an unconstrained
// fleet against a capped one and accounts the daily energy both ways.
//
// Run with: go run ./examples/hpccenter
package main

import (
	"fmt"
	"log"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/sched"
	"gpudvfs/internal/workloads"
)

func main() {
	arch := sim.GA100()

	fmt.Println("training power/performance models on the benchmark suite...")
	offline, err := core.OfflineTrain(sim.New(arch, 42), backend.Workloads(workloads.TrainingSet()),
		dcgm.Config{Seed: 1}, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	jobs := []sched.Job{
		{Name: "md-lammps", App: workloads.LAMMPS(), GPUs: 4, MaxSlowdown: 0.05},
		{Name: "md-namd", App: workloads.NAMD(), GPUs: 2, MaxSlowdown: 0.05},
		{Name: "chem-gromacs", App: workloads.GROMACS(), GPUs: 2, MaxSlowdown: 0.05},
		{Name: "ml-lstm", App: workloads.LSTM(), GPUs: 1, MaxSlowdown: 0.15},
		{Name: "ml-bert", App: workloads.BERT(), GPUs: 2, MaxSlowdown: 0.10},
		{Name: "ml-resnet", App: workloads.ResNet50(), GPUs: 1, MaxSlowdown: 0.15},
	}

	planner, err := sched.NewPlanner(sim.New(arch, 7), offline.Models, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiling %d jobs once each at the maximum clock...\n\n", len(jobs))
	if err := planner.Profile(jobs); err != nil {
		log.Fatal(err)
	}

	unconstrained, err := planner.Plan(1e9)
	if err != nil {
		log.Fatal(err)
	}
	minBudget, err := planner.MinFeasibleBudget()
	if err != nil {
		log.Fatal(err)
	}
	// Cap the rack at 80% of the unconstrained draw.
	budget := 0.8 * unconstrained.TotalPowerWatts
	capped, err := planner.Plan(budget)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("unconstrained fleet: %.0f W (per-job thresholds floor it at %.0f W)\n",
		unconstrained.TotalPowerWatts, minBudget)
	fmt.Printf("capping at %.0f W (80%%):\n\n", budget)
	fmt.Printf("%-14s %5s %10s %13s %11s %11s\n", "job", "gpus", "freq_mhz", "power_w/gpu", "slowdown", "energy_chg")
	for _, a := range capped.Assignments {
		fmt.Printf("%-14s %5d %10.0f %13.1f %+10.1f%% %+10.1f%%\n",
			a.Job, a.GPUs, a.FreqMHz, a.PowerWatts, -a.SlowdownPct, a.EnergyPct)
	}
	fmt.Printf("\ncapped fleet power: %.0f W (fits: %v)\n", capped.TotalPowerWatts, capped.FitsBudget)

	// Daily energy accounting: each job's power scales its GPU hours by
	// its slowdown (work-conserving jobs run longer at lower clocks).
	const gpuHoursPerJob = 200.0
	account := func(p sched.Plan) float64 {
		var kWh float64
		for _, a := range p.Assignments {
			slow := 1 + a.SlowdownPct/100
			kWh += a.PowerWatts * float64(a.GPUs) * gpuHoursPerJob * slow / 1000
		}
		return kWh
	}
	base, plan := account(unconstrained), account(capped)
	fmt.Printf("\ndaily energy at default clocks: %8.1f kWh\n", base)
	fmt.Printf("daily energy under the cap:     %8.1f kWh\n", plan)
	fmt.Printf("saving:                         %8.1f kWh (%.1f%%)\n", base-plan, (base-plan)/base*100)
}
