// Quickstart: the paper's complete workflow in one file.
//
// It trains the DNN power and performance models on the benchmark suite
// (offline phase), profiles an unseen application once at the maximum
// clock (online phase), predicts its power/time/energy across all 61 DVFS
// configurations of the A100, and selects the energy-optimal frequency
// with the ED²P objective.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/workloads"
)

func main() {
	// --- Offline phase: collect benchmark telemetry and train models. ---
	arch := sim.GA100()
	trainDev := sim.New(arch, 42)
	fmt.Printf("offline phase: collecting %d training workloads across %d DVFS configs on %s...\n",
		len(workloads.TrainingSet()), len(arch.DesignClocks()), arch.Name)

	offline, err := core.OfflineTrain(trainDev, backend.Workloads(workloads.TrainingSet()),
		dcgm.Config{Seed: 1}, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d points; final val MSE: power %.5f, time %.5f\n\n",
		len(offline.Dataset.Points),
		lastOf(offline.Models.PowerHist.ValLoss), lastOf(offline.Models.TimeHist.ValLoss))

	// --- Online phase: one profiling run of an unseen application. ---
	app := workloads.LAMMPS()
	appDev := sim.New(arch, 7)
	online, err := core.OnlinePredict(appDev, offline.Models, app, dcgm.Config{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online phase: profiled %s once at %.0f MHz (%.2f s, %.0f W)\n",
		app.Name, online.ProfileRun.FreqMHz, online.ProfileRun.ExecTimeSec, online.ProfileRun.AvgPowerWatts)

	// --- Selection: minimize ED²P over the predicted profiles. ---
	sel, err := core.SelectFrequency(online.Predicted, objective.ED2P{}, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nED2P-optimal frequency for %s: %.0f MHz\n", app.Name, sel.FreqMHz)
	fmt.Printf("predicted vs running at the default %.0f MHz: energy %+.1f%%, time %+.1f%%\n",
		arch.MaxFreqMHz, sel.EnergyPct, sel.TimePct)

	// Sanity-check the choice against measured data.
	coll := dcgm.NewCollector(sim.New(arch, 9), dcgm.Config{Seed: 10})
	runs, err := coll.CollectWorkload(app)
	if err != nil {
		log.Fatal(err)
	}
	measured := core.MeasuredProfiles(runs)
	for _, m := range measured {
		if m.FreqMHz == sel.FreqMHz {
			to, err := objective.Evaluate(measured, m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("measured at that frequency:  energy %+.1f%%, time %+.1f%%\n", to.EnergyPct, to.TimePct)
		}
	}
}

func lastOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}
