// Threshold explorer (paper §5.3 and Table 6): how the objective function
// and the performance-degradation threshold shape the energy/performance
// trade-off for one application.
//
// For the chosen application it sweeps EDP and ED²P, each under a range of
// thresholds, selecting from *predicted* profiles and scoring each choice
// on *measured* data — the situation a real deployment faces.
//
// Run with: go run ./examples/threshold [app]
package main

import (
	"fmt"
	"log"
	"os"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/objective"
	"gpudvfs/internal/workloads"
)

func main() {
	appName := "ResNet50" // the paper's highest-penalty outlier
	if len(os.Args) > 1 {
		appName = os.Args[1]
	}
	app, err := workloads.ByName(appName)
	if err != nil {
		log.Fatal(err)
	}
	arch := sim.GA100()

	fmt.Println("training models on the benchmark suite...")
	offline, err := core.OfflineTrain(sim.New(arch, 42), backend.Workloads(workloads.TrainingSet()),
		dcgm.Config{Seed: 1}, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	online, err := core.OnlinePredict(sim.New(arch, 7), offline.Models, app, dcgm.Config{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	coll := dcgm.NewCollector(sim.New(arch, 9), dcgm.Config{Seed: 10})
	runs, err := coll.CollectWorkload(app)
	if err != nil {
		log.Fatal(err)
	}
	measured := core.MeasuredProfiles(runs)
	measAt := map[float64]objective.Profile{}
	for _, m := range measured {
		measAt[m.FreqMHz] = m
	}

	fmt.Printf("\napplication: %s on %s\n", app.Name, arch.Name)
	fmt.Printf("%-6s %-10s %10s %14s %14s\n", "obj", "threshold", "freq_mhz", "meas_energy", "meas_time")
	thresholds := []float64{-1, 0.20, 0.10, 0.05, 0.02, 0.01}
	for _, obj := range []objective.Objective{objective.EDP{}, objective.ED2P{}} {
		for _, th := range thresholds {
			sel, err := core.SelectFrequency(online.Predicted, obj, th)
			if err != nil {
				log.Fatal(err)
			}
			m, ok := measAt[sel.FreqMHz]
			if !ok {
				log.Fatalf("no measured profile at %v MHz", sel.FreqMHz)
			}
			to, err := objective.Evaluate(measured, m)
			if err != nil {
				log.Fatal(err)
			}
			label := "none"
			if th >= 0 {
				label = fmt.Sprintf("%.0f%%", th*100)
			}
			fmt.Printf("%-6s %-10s %10.0f %+13.1f%% %+13.1f%%\n",
				obj.Name(), label, sel.FreqMHz, to.EnergyPct, to.TimePct)
		}
	}
	fmt.Println("\nnegative meas_time is a performance loss; tightening the threshold trades")
	fmt.Println("energy savings for bounded slowdown, reproducing the paper's Table 6 behaviour.")
}
