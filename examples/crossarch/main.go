// Cross-architecture portability (paper §4.2.4 and Table 3): models
// trained exclusively on GA100 (A100/Ampere) telemetry predict power and
// execution time on GV100 (V100/Volta) — a GPU with half the TDP, a
// different frequency range, and a different DVFS step — without any
// retraining.
//
// The normalized formulation makes this work: the power model predicts
// fractions of TDP and the time model predicts slowdowns relative to the
// maximum clock, so the same network denormalizes against whichever
// architecture it is asked about.
//
// Run with: go run ./examples/crossarch
package main

import (
	"fmt"
	"log"

	"gpudvfs/internal/backend"
	sim "gpudvfs/internal/backend/sim"
	"gpudvfs/internal/core"
	"gpudvfs/internal/dcgm"
	"gpudvfs/internal/workloads"
)

func main() {
	ga, gv := sim.GA100(), sim.GV100()

	fmt.Printf("training on %s only (%d DVFS configs)...\n", ga.Name, len(ga.DesignClocks()))
	offline, err := core.OfflineTrain(sim.New(ga, 42), backend.Workloads(workloads.TrainingSet()),
		dcgm.Config{Seed: 1}, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evaluating the same models on both architectures:\n\n")
	fmt.Printf("%-7s %-10s %12s %12s\n", "gpu", "app", "power_acc", "time_acc")
	for _, arch := range []sim.Arch{ga, gv} {
		var sumP, sumT float64
		apps := workloads.RealApps()
		for i, app := range apps {
			seed := int64(1000 + i)
			if arch.Name == "GV100" {
				seed += 500
			}
			// Measured ground truth: a full sweep on this architecture.
			coll := dcgm.NewCollector(sim.New(arch, seed), dcgm.Config{Seed: seed + 1})
			runs, err := coll.CollectWorkload(app)
			if err != nil {
				log.Fatal(err)
			}
			measured := core.MeasuredProfiles(runs)

			// Online phase on this architecture with the GA100 models.
			online, err := core.OnlinePredict(sim.New(arch, seed+2), offline.Models, app,
				dcgm.Config{Seed: seed + 3})
			if err != nil {
				log.Fatal(err)
			}
			acc, err := core.EvaluateAccuracy(online.Predicted, measured)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7s %-10s %11.1f%% %11.1f%%\n", arch.Name, app.Name, acc.Power, acc.Time)
			sumP += acc.Power
			sumT += acc.Time
		}
		n := float64(len(apps))
		fmt.Printf("%-7s %-10s %11.1f%% %11.1f%%\n\n", arch.Name, "AVERAGE", sumP/n, sumT/n)
	}
	fmt.Println("the GV100 rows used zero GV100 training data — only one profiling run per app.")
}
